//! First-order optimizers.
//!
//! Optimizers keep per-parameter state (momentum buffers, adaptive moments)
//! keyed by the parameter's *position* in the stable ordering that
//! [`crate::Layer::params`] exposes. State buffers are allocated lazily on
//! the first step, so one optimizer instance serves any network.

use crate::layer::ParamRef;
use serde::{Deserialize, Serialize};
use simpadv_tensor::Tensor;

/// A serializable snapshot of an optimizer's per-parameter buffers,
/// captured by [`Optimizer::snapshot_state`] for checkpoint/resume.
///
/// `groups` holds the state tensor groups in the optimizer's own order
/// (e.g. SGD has one group — velocity; Adam has two — first and second
/// moments), each group keyed by parameter position. `step` carries
/// scalar progress such as Adam's bias-correction counter.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OptimState {
    /// Per-parameter state tensors, grouped by the optimizer's buffers.
    pub groups: Vec<Vec<Tensor>>,
    /// Scalar step counter (0 for stateless rules).
    pub step: u64,
}

/// A first-order parameter-update rule.
pub trait Optimizer: std::fmt::Debug {
    /// Applies one update to every parameter given its accumulated
    /// gradient. Gradients are *not* cleared; call
    /// [`crate::Layer::zero_grad`] before the next accumulation.
    fn step(&mut self, params: &mut [ParamRef<'_>]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by LR schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Captures the per-parameter state buffers for checkpointing. The
    /// default covers stateless rules (nothing to save).
    fn snapshot_state(&self) -> OptimState {
        OptimState::default()
    }

    /// Restores buffers captured by [`Optimizer::snapshot_state`]. The
    /// lazy-allocation path tolerates an empty snapshot (fresh start);
    /// implementations adopt whatever groups match their layout.
    fn restore_state(&mut self, state: OptimState) {
        let _ = state;
    }
}

/// Rescales all gradients so their global l2 norm is at most `max_norm`;
/// returns the pre-clip norm. A standard guard against unstable updates
/// in adversarial training's early epochs.
///
/// # Panics
///
/// Panics unless `max_norm > 0`.
pub fn clip_grad_norm(params: &mut [ParamRef<'_>], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let total: f32 = params
        .iter()
        .map(|p| p.grad.as_slice().iter().map(|&v| v * v).sum::<f32>())
        .sum::<f32>()
        .sqrt();
    if total > max_norm {
        let scale = max_norm / total;
        for p in params.iter_mut() {
            p.grad.scale_in_place(scale);
        }
    }
    total
}

fn lazy_state(state: &mut Vec<Tensor>, params: &[ParamRef<'_>]) {
    let stale = state.len() != params.len()
        || state.iter().zip(params.iter()).any(|(s, p)| s.shape() != p.value.shape());
    if stale {
        *state = params.iter().map(|p| Tensor::zeros(p.value.shape())).collect();
    }
}

/// Stochastic gradient descent with optional momentum, Nesterov lookahead
/// and decoupled weight decay.
///
/// # Example
///
/// ```
/// use simpadv_nn::{Optimizer, Sgd};
///
/// let mut opt = Sgd::new(0.1).with_momentum(0.9).with_weight_decay(1e-4);
/// assert_eq!(opt.learning_rate(), 0.1);
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    nesterov: bool,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr, momentum: 0.0, nesterov: false, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// Enables classical momentum.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= momentum < 1`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum {momentum} not in [0, 1)");
        self.momentum = momentum;
        self
    }

    /// Switches momentum to the Nesterov variant.
    pub fn with_nesterov(mut self) -> Self {
        self.nesterov = true;
        self
    }

    /// Enables decoupled L2 weight decay.
    ///
    /// # Panics
    ///
    /// Panics if `decay` is negative.
    pub fn with_weight_decay(mut self, decay: f32) -> Self {
        assert!(decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = decay;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [ParamRef<'_>]) {
        lazy_state(&mut self.velocity, params);
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            if self.weight_decay > 0.0 {
                // decoupled decay: w <- w * (1 - lr*wd)
                p.value.scale_in_place(1.0 - self.lr * self.weight_decay);
            }
            if self.momentum > 0.0 {
                // v <- m v + g
                v.scale_in_place(self.momentum);
                v.add_assign(p.grad);
                if self.nesterov {
                    // w <- w - lr (g + m v)
                    p.value.add_scaled(p.grad, -self.lr);
                    p.value.add_scaled(v, -self.lr * self.momentum);
                } else {
                    p.value.add_scaled(v, -self.lr);
                }
            } else {
                p.value.add_scaled(p.grad, -self.lr);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    fn snapshot_state(&self) -> OptimState {
        OptimState { groups: vec![self.velocity.clone()], step: 0 }
    }

    fn restore_state(&mut self, state: OptimState) {
        if let Some(velocity) = state.groups.into_iter().next() {
            self.velocity = velocity;
        }
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the conventional defaults β₁=0.9, β₂=0.999, ε=1e-8.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0`.
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Adam with explicit moment decay rates.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0` and both betas lie in `[0, 1)`.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2),
            "betas must be in [0,1)"
        );
        Adam { lr, beta1, beta2, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [ParamRef<'_>]) {
        lazy_state(&mut self.m, params);
        lazy_state(&mut self.v, params);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            let g = p.grad.as_slice();
            let ms = m.as_mut_slice();
            let vs = v.as_mut_slice();
            let w = p.value.as_mut_slice();
            for i in 0..g.len() {
                ms[i] = self.beta1 * ms[i] + (1.0 - self.beta1) * g[i];
                vs[i] = self.beta2 * vs[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = ms[i] / bc1;
                let vhat = vs[i] / bc2;
                w[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    fn snapshot_state(&self) -> OptimState {
        OptimState { groups: vec![self.m.clone(), self.v.clone()], step: self.t }
    }

    fn restore_state(&mut self, state: OptimState) {
        let mut groups = state.groups.into_iter();
        if let (Some(m), Some(v)) = (groups.next(), groups.next()) {
            self.m = m;
            self.v = v;
            self.t = state.step;
        }
    }
}

/// RMSProp (Tieleman & Hinton).
#[derive(Debug)]
pub struct RmsProp {
    lr: f32,
    decay: f32,
    eps: f32,
    sq: Vec<Tensor>,
}

impl RmsProp {
    /// RMSProp with the given learning rate and squared-gradient decay
    /// (conventionally 0.99).
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0` and `0 <= decay < 1`.
    pub fn new(lr: f32, decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&decay), "decay {decay} not in [0, 1)");
        RmsProp { lr, decay, eps: 1e-8, sq: Vec::new() }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, params: &mut [ParamRef<'_>]) {
        lazy_state(&mut self.sq, params);
        for (p, s) in params.iter_mut().zip(&mut self.sq) {
            let g = p.grad.as_slice();
            let ss = s.as_mut_slice();
            let w = p.value.as_mut_slice();
            for i in 0..g.len() {
                ss[i] = self.decay * ss[i] + (1.0 - self.decay) * g[i] * g[i];
                w[i] -= self.lr * g[i] / (ss[i].sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    fn snapshot_state(&self) -> OptimState {
        OptimState { groups: vec![self.sq.clone()], step: 0 }
    }

    fn restore_state(&mut self, state: OptimState) {
        if let Some(sq) = state.groups.into_iter().next() {
            self.sq = sq;
        }
    }
}

/// AdaGrad (Duchi et al.).
#[derive(Debug)]
pub struct AdaGrad {
    lr: f32,
    eps: f32,
    accum: Vec<Tensor>,
}

impl AdaGrad {
    /// AdaGrad with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        AdaGrad { lr, eps: 1e-8, accum: Vec::new() }
    }
}

impl Optimizer for AdaGrad {
    fn step(&mut self, params: &mut [ParamRef<'_>]) {
        lazy_state(&mut self.accum, params);
        let (lr, eps) = (self.lr, self.eps);
        for (p, a) in params.iter_mut().zip(&mut self.accum) {
            // Element-wise throughout, so routing through the canonical
            // tensor kernels is bitwise-identical to the fused loop:
            // `w -= u` and `w += (-1.0) * u` round the same way.
            a.add_assign(&p.grad.zip_map(p.grad, |g, h| g * h));
            let update = p.grad.zip_map(a, |g, acc| lr * g / (acc.sqrt() + eps));
            p.value.add_scaled(&update, -1.0);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    fn snapshot_state(&self) -> OptimState {
        OptimState { groups: vec![self.accum.clone()], step: 0 }
    }

    fn restore_state(&mut self, state: OptimState) {
        if let Some(accum) = state.groups.into_iter().next() {
            self.accum = accum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(w) = ||w - target||² with the given optimizer and checks
    /// convergence — the canonical smoke test for update rules.
    fn converges(opt: &mut dyn Optimizer, steps: usize, tol: f32) {
        let target = [3.0f32, -2.0, 0.5];
        let mut w = Tensor::zeros(&[3]);
        let mut g = Tensor::zeros(&[3]);
        for _ in 0..steps {
            for (i, t) in target.iter().enumerate() {
                g.as_mut_slice()[i] = 2.0 * (w.as_slice()[i] - t);
            }
            let mut params = vec![ParamRef { value: &mut w, grad: &mut g }];
            opt.step(&mut params);
        }
        for (i, t) in target.iter().enumerate() {
            assert!(
                (w.as_slice()[i] - t).abs() < tol,
                "w[{i}] = {} did not converge to {t}",
                w.as_slice()[i],
            );
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        converges(&mut Sgd::new(0.1), 200, 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        converges(&mut Sgd::new(0.05).with_momentum(0.9), 300, 1e-2);
    }

    #[test]
    fn sgd_nesterov_converges() {
        converges(&mut Sgd::new(0.05).with_momentum(0.9).with_nesterov(), 300, 1e-2);
    }

    #[test]
    fn adam_converges() {
        converges(&mut Adam::new(0.1), 500, 1e-2);
    }

    #[test]
    fn rmsprop_converges() {
        converges(&mut RmsProp::new(0.05, 0.9), 600, 2e-2);
    }

    #[test]
    fn adagrad_converges() {
        converges(&mut AdaGrad::new(0.5), 800, 2e-2);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        let mut w = Tensor::ones(&[2]);
        let mut g = Tensor::zeros(&[2]);
        let mut params = vec![ParamRef { value: &mut w, grad: &mut g }];
        opt.step(&mut params);
        assert!(w.as_slice().iter().all(|&v| v < 1.0 && v > 0.9));
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lr_rejected() {
        Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn momentum_of_one_rejected() {
        let _ = Sgd::new(0.1).with_momentum(1.0);
    }

    #[test]
    fn clip_grad_norm_rescales_only_when_needed() {
        let mut w1 = Tensor::zeros(&[2]);
        let mut g1 = Tensor::from_slice(&[3.0, 0.0]);
        let mut w2 = Tensor::zeros(&[1]);
        let mut g2 = Tensor::from_slice(&[4.0]);
        let mut params = vec![
            ParamRef { value: &mut w1, grad: &mut g1 },
            ParamRef { value: &mut w2, grad: &mut g2 },
        ];
        // global norm = 5
        let norm = clip_grad_norm(&mut params, 2.5);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((params[0].grad.as_slice()[0] - 1.5).abs() < 1e-6);
        assert!((params[1].grad.as_slice()[0] - 2.0).abs() < 1e-6);
        // already within bounds: untouched
        let norm2 = clip_grad_norm(&mut params, 10.0);
        assert!((norm2 - 2.5).abs() < 1e-6);
        assert!((params[1].grad.as_slice()[0] - 2.0).abs() < 1e-6);
    }

    /// Runs `steps` quadratic-descent updates, returning the weights.
    fn drive(opt: &mut dyn Optimizer, w: &mut Tensor, steps: usize) {
        let target = [3.0f32, -2.0, 0.5];
        let mut g = Tensor::zeros(&[3]);
        for _ in 0..steps {
            for (i, t) in target.iter().enumerate() {
                g.as_mut_slice()[i] = 2.0 * (w.as_slice()[i] - t);
            }
            let mut params = vec![ParamRef { value: w, grad: &mut g }];
            opt.step(&mut params);
        }
    }

    #[test]
    fn snapshot_restore_is_bitwise_transparent() {
        // 10 steps straight must equal 5 steps + snapshot/restore + 5 steps,
        // for every stateful rule. This is the optimizer half of the
        // checkpoint/resume bitwise contract.
        let builders: Vec<fn() -> Box<dyn Optimizer>> = vec![
            || Box::new(Sgd::new(0.05).with_momentum(0.9)),
            || Box::new(Adam::new(0.1)),
            || Box::new(RmsProp::new(0.05, 0.9)),
            || Box::new(AdaGrad::new(0.5)),
        ];
        for build in builders {
            let mut straight = build();
            let mut w_straight = Tensor::zeros(&[3]);
            drive(straight.as_mut(), &mut w_straight, 10);

            let mut first = build();
            let mut w_resumed = Tensor::zeros(&[3]);
            drive(first.as_mut(), &mut w_resumed, 5);
            let snapshot = first.snapshot_state();
            drop(first);
            let mut second = build();
            second.restore_state(snapshot);
            drive(second.as_mut(), &mut w_resumed, 5);

            let a: Vec<u32> = w_straight.as_slice().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = w_resumed.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "resume diverged for {straight:?}");
        }
    }

    #[test]
    fn stateless_snapshot_is_empty_and_restore_tolerated() {
        let opt = Sgd::new(0.1); // no momentum -> velocity only lazily filled
        let state = opt.snapshot_state();
        assert_eq!(state.step, 0);
        let mut opt2 = Sgd::new(0.1);
        opt2.restore_state(state);
        opt2.restore_state(OptimState::default()); // empty snapshot is a no-op
    }

    #[test]
    fn state_reallocates_for_new_network() {
        // Using one optimizer across two different parameter sets must not
        // panic — state is keyed by position and reallocated on mismatch.
        let mut opt = Adam::new(0.01);
        let mut w1 = Tensor::ones(&[3]);
        let mut g1 = Tensor::ones(&[3]);
        opt.step(&mut [ParamRef { value: &mut w1, grad: &mut g1 }]);
        let mut w2 = Tensor::ones(&[5]);
        let mut g2 = Tensor::ones(&[5]);
        let mut w3 = Tensor::ones(&[2]);
        let mut g3 = Tensor::ones(&[2]);
        opt.step(&mut [
            ParamRef { value: &mut w2, grad: &mut g2 },
            ParamRef { value: &mut w3, grad: &mut g3 },
        ]);
    }
}
