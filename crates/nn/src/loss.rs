//! Loss functions and softmax helpers.

use simpadv_tensor::Tensor;

/// Row-wise numerically stable softmax of a `[n, c]` logit tensor.
///
/// # Panics
///
/// Panics if `logits` is not rank 2.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.rank(), 2, "softmax expects [n, c], got {:?}", logits.shape());
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    let mut out = vec![0.0f32; n * c];
    let s = logits.as_slice();
    for i in 0..n {
        let row = &s[i * c..(i + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0;
        for j in 0..c {
            let e = (row[j] - m).exp();
            out[i * c + j] = e;
            z += e;
        }
        for j in 0..c {
            out[i * c + j] /= z;
        }
    }
    Tensor::from_vec(out, &[n, c])
}

/// Row-wise numerically stable log-softmax of a `[n, c]` logit tensor.
///
/// # Panics
///
/// Panics if `logits` is not rank 2.
pub fn log_softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.rank(), 2, "log_softmax expects [n, c], got {:?}", logits.shape());
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    let mut out = vec![0.0f32; n * c];
    let s = logits.as_slice();
    for i in 0..n {
        let row = &s[i * c..(i + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
        for j in 0..c {
            out[i * c + j] = row[j] - lse;
        }
    }
    Tensor::from_vec(out, &[n, c])
}

/// A differentiable training criterion over `[n, c]` predictions.
///
/// `forward` returns the mean loss over the batch **and** the gradient of
/// that mean loss with respect to the predictions, so trainers never pay a
/// second pass.
pub trait Loss: std::fmt::Debug {
    /// Computes `(mean_loss, dloss/dpredictions)`.
    fn forward(&self, predictions: &Tensor, targets: &[usize]) -> (f32, Tensor);

    /// A short human-readable name.
    fn name(&self) -> &'static str;
}

/// Fused softmax + cross-entropy over integer class labels.
///
/// The fused gradient is the numerically exact `softmax(logits) - onehot`,
/// scaled by `1/n` for the batch mean.
///
/// # Example
///
/// ```
/// use simpadv_nn::{Loss, SoftmaxCrossEntropy};
/// use simpadv_tensor::Tensor;
///
/// let loss = SoftmaxCrossEntropy::new();
/// let logits = Tensor::from_vec(vec![10.0, -10.0], &[1, 2]);
/// let (l, grad) = loss.forward(&logits, &[0]);
/// assert!(l < 1e-3); // confident and correct
/// assert_eq!(grad.shape(), &[1, 2]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        SoftmaxCrossEntropy
    }
}

impl Loss for SoftmaxCrossEntropy {
    /// # Panics
    ///
    /// Panics if `predictions` is not `[n, c]`, `targets.len() != n`, or
    /// any label is out of range.
    fn forward(&self, predictions: &Tensor, targets: &[usize]) -> (f32, Tensor) {
        assert_eq!(predictions.rank(), 2, "cross-entropy expects [n, c] logits");
        let (n, c) = (predictions.shape()[0], predictions.shape()[1]);
        assert_eq!(targets.len(), n, "label count {} != batch size {n}", targets.len());
        let logp = log_softmax(predictions);
        let mut grad = softmax(predictions);
        let mut loss = 0.0;
        let scale = 1.0 / n as f32;
        let g = grad.as_mut_slice();
        let lp = logp.as_slice();
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < c, "label {t} out of range for {c} classes");
            loss -= lp[i * c + t];
            g[i * c + t] -= 1.0;
        }
        grad.scale_in_place(scale);
        (loss * scale, grad)
    }

    fn name(&self) -> &'static str {
        "softmax_cross_entropy"
    }
}

/// Mean squared error against one-hot targets.
///
/// Provided for completeness (regression-style baselines and tests);
/// classifiers in this project train with [`SoftmaxCrossEntropy`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MseLoss;

impl MseLoss {
    /// Creates the loss.
    pub fn new() -> Self {
        MseLoss
    }
}

impl Loss for MseLoss {
    /// # Panics
    ///
    /// Panics on shape/label mismatches as for [`SoftmaxCrossEntropy`].
    fn forward(&self, predictions: &Tensor, targets: &[usize]) -> (f32, Tensor) {
        assert_eq!(predictions.rank(), 2, "mse expects [n, c] predictions");
        let (n, c) = (predictions.shape()[0], predictions.shape()[1]);
        assert_eq!(targets.len(), n, "label count {} != batch size {n}", targets.len());
        let mut grad = predictions.clone();
        let g = grad.as_mut_slice();
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < c, "label {t} out of range for {c} classes");
            g[i * c + t] -= 1.0;
        }
        let loss = g.iter().map(|&v| v * v).sum::<f32>() / (n * c) as f32;
        grad.scale_in_place(2.0 / (n * c) as f32);
        (loss, grad)
    }

    fn name(&self) -> &'static str {
        "mse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_matches_log_softmax() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0], &[2, 3]);
        let p = softmax(&logits);
        let lp = log_softmax(&logits);
        for (a, b) in p.as_slice().iter().zip(lp.as_slice()) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_stable_for_huge_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 999.0], &[1, 2]);
        let p = softmax(&logits);
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
        assert!((p.row(0).sum() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(&[4, 10]);
        let (l, _) = loss.forward(&logits, &[0, 3, 5, 9]);
        assert!((l - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_gradient_is_softmax_minus_onehot() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5], &[1, 3]);
        let (_, grad) = loss.forward(&logits, &[1]);
        let p = softmax(&logits);
        assert!((grad.as_slice()[0] - p.as_slice()[0]).abs() < 1e-6);
        assert!((grad.as_slice()[1] - (p.as_slice()[1] - 1.0)).abs() < 1e-6);
        // batch-mean gradient sums to ~0 over the correct coordinate system
        assert!(grad.sum().abs() < 1e-5);
    }

    #[test]
    fn ce_gradient_matches_finite_differences() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, 0.9, -0.2], &[2, 3]);
        let targets = [2usize, 0];
        let (_, grad) = loss.forward(&logits, &targets);
        let h = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += h;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= h;
            let num = (loss.forward(&lp, &targets).0 - loss.forward(&lm, &targets).0) / (2.0 * h);
            assert!(
                (num - grad.as_slice()[i]).abs() < 1e-3,
                "grad[{i}] numeric {num} vs analytic {}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn mse_gradient_matches_finite_differences() {
        let loss = MseLoss::new();
        let preds = Tensor::from_vec(vec![0.2, 0.8, 0.5, 0.1], &[2, 2]);
        let targets = [1usize, 0];
        let (_, grad) = loss.forward(&preds, &targets);
        let h = 1e-3;
        for i in 0..preds.len() {
            let mut pp = preds.clone();
            pp.as_mut_slice()[i] += h;
            let mut pm = preds.clone();
            pm.as_mut_slice()[i] -= h;
            let num = (loss.forward(&pp, &targets).0 - loss.forward(&pm, &targets).0) / (2.0 * h);
            assert!((num - grad.as_slice()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn perfect_prediction_has_small_loss() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0], &[1, 3]);
        let (l, _) = loss.forward(&logits, &[0]);
        assert!(l < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ce_validates_labels() {
        SoftmaxCrossEntropy::new().forward(&Tensor::zeros(&[1, 3]), &[3]);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn ce_validates_label_count() {
        SoftmaxCrossEntropy::new().forward(&Tensor::zeros(&[2, 3]), &[0]);
    }
}
