//! The [`Classifier`] wrapper and the [`GradientModel`] trait consumed by
//! adversarial attacks.

use crate::layer::{Layer, Mode};
use crate::layers::Sequential;
use crate::loss::{Loss, SoftmaxCrossEntropy};
use crate::optim::Optimizer;
use simpadv_tensor::Tensor;

/// A white-box view of a differentiable classifier: everything a
/// gradient-based attack needs.
///
/// `simpadv-attacks` is written against this trait, so attacks are agnostic
/// to the network architecture (and testable against tiny closed-form
/// models).
pub trait GradientModel {
    /// Deterministic (evaluation-mode) logits for a batch.
    fn logits(&mut self, x: &Tensor) -> Tensor;

    /// Mean cross-entropy loss of the batch and its gradient with respect
    /// to the **input pixels** — the `∇ₓ L(C(x), y)` of the FGSM/BIM
    /// definitions.
    fn loss_and_input_grad(&mut self, x: &Tensor, y: &[usize]) -> (f32, Tensor);

    /// Input gradient of an arbitrary differentiable function of the
    /// logits: runs an evaluation-mode forward, calls `grad_of_logits`
    /// with the logits to obtain ∂loss/∂logits, and backpropagates that
    /// to the input.
    ///
    /// This is the hook for attacks with custom objectives (e.g. the
    /// Carlini–Wagner margin loss), which cross-entropy-only interfaces
    /// cannot express.
    fn custom_input_grad(
        &mut self,
        x: &Tensor,
        grad_of_logits: &mut dyn FnMut(&Tensor) -> Tensor,
    ) -> Tensor;

    /// Number of classes the model discriminates.
    fn num_classes(&self) -> usize;
}

/// A trainable classifier: a [`Sequential`] backbone plus the fused
/// softmax–cross-entropy criterion.
///
/// All the adversarial-training methods in `simpadv` operate on this type;
/// it exposes the three primitives they need — `train_batch`, eval-mode
/// `logits`, and `loss_and_input_grad` for attack generation — plus
/// gradient-pass counters used for the cost accounting in the paper's
/// Table I.
#[derive(Debug, Clone)]
pub struct Classifier {
    net: Sequential,
    loss: SoftmaxCrossEntropy,
    num_classes: usize,
    forward_passes: u64,
    backward_passes: u64,
}

impl Classifier {
    /// Wraps a backbone network whose final layer emits `num_classes`
    /// logits.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0`.
    pub fn new(net: Sequential, num_classes: usize) -> Self {
        assert!(num_classes > 0, "need at least one class");
        Classifier {
            net,
            loss: SoftmaxCrossEntropy::new(),
            num_classes,
            forward_passes: 0,
            backward_passes: 0,
        }
    }

    /// Immutable access to the backbone.
    pub fn network(&self) -> &Sequential {
        &self.net
    }

    /// Mutable access to the backbone (for optimizers and serialization).
    pub fn network_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// Total trainable scalars.
    pub fn param_count(&mut self) -> usize {
        self.net.param_count()
    }

    /// Forward passes performed so far (training + evaluation + attacks).
    ///
    /// Together with [`Classifier::backward_passes`] this gives an
    /// architecture-independent cost measure: the paper's "training time
    /// per epoch" ratios are proportional to gradient-pass counts.
    pub fn forward_passes(&self) -> u64 {
        self.forward_passes
    }

    /// Backward passes performed so far.
    pub fn backward_passes(&self) -> u64 {
        self.backward_passes
    }

    /// Resets the pass counters (e.g. at an epoch boundary).
    pub fn reset_pass_counters(&mut self) {
        self.forward_passes = 0;
        self.backward_passes = 0;
    }

    /// Credits passes performed on behalf of this classifier by replicas
    /// (e.g. data-parallel attack crafting on clones).
    ///
    /// Counted in batch-row equivalents: a batch processed as several
    /// parallel chunks costs the same row count as one serial pass, so
    /// callers credit one forward/backward per logical batch regardless
    /// of chunking. This keeps the Table I cost accounting independent
    /// of the thread count.
    ///
    /// Deliberately does **not** tick the global trace clock: the
    /// replicas already ticked it once per actual pass, and crediting
    /// again here would double-count.
    pub fn credit_external_passes(&mut self, forward: u64, backward: u64) {
        self.forward_passes += forward;
        self.backward_passes += backward;
    }

    /// Counts one real forward pass on both the per-model counter and
    /// the global trace clock.
    fn note_forward(&mut self) {
        self.forward_passes += 1;
        simpadv_trace::clock::tick_forward(1);
    }

    /// Counts one real backward pass on both the per-model counter and
    /// the global trace clock.
    fn note_backward(&mut self) {
        self.backward_passes += 1;
        simpadv_trace::clock::tick_backward(1);
    }

    /// Training-mode forward pass (dropout active, batch-norm batch stats).
    pub fn forward_train(&mut self, x: &Tensor) -> Tensor {
        self.note_forward();
        self.net.forward(x, Mode::Train)
    }

    /// One optimizer step on a batch: forward, loss, backward, update.
    /// Returns the batch's mean loss.
    pub fn train_batch(&mut self, x: &Tensor, y: &[usize], opt: &mut dyn Optimizer) -> f32 {
        let logits = self.forward_train(x);
        let (loss, grad) = self.loss.forward(&logits, y);
        self.net.zero_grad();
        self.note_backward();
        let _ = self.net.backward(&grad);
        opt.step(&mut self.net.params());
        loss
    }

    /// Like [`Classifier::train_batch`], but also returns the gradient of
    /// the batch loss with respect to the **input** — computed by the same
    /// backward pass that produced the parameter gradients, i.e. at zero
    /// extra cost.
    ///
    /// This enables "free"-style adversarial training, where the attack
    /// direction is recycled from the training backward pass.
    pub fn train_batch_with_input_grad(
        &mut self,
        x: &Tensor,
        y: &[usize],
        opt: &mut dyn Optimizer,
    ) -> (f32, Tensor) {
        let logits = self.forward_train(x);
        let (loss, grad) = self.loss.forward(&logits, y);
        self.net.zero_grad();
        self.note_backward();
        let grad_x = self.net.backward(&grad);
        opt.step(&mut self.net.params());
        (loss, grad_x)
    }

    /// One optimizer step from an externally computed logit gradient:
    /// backpropagates `grad_logits` through the network cached by the last
    /// [`Classifier::forward_train`] call and applies `opt`.
    ///
    /// This is the hook for methods with composite losses (e.g. ATDA's
    /// domain-adaptation terms) that cannot be expressed as a per-example
    /// criterion.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has been run or the gradient shape does
    /// not match the last forward output.
    pub fn step_from_logit_grad(&mut self, grad_logits: &Tensor, opt: &mut dyn Optimizer) {
        self.net.zero_grad();
        self.note_backward();
        let _ = self.net.backward(grad_logits);
        opt.step(&mut self.net.params());
    }

    /// Mean loss of a batch without updating parameters (evaluation mode).
    pub fn eval_loss(&mut self, x: &Tensor, y: &[usize]) -> f32 {
        let logits = self.logits(x);
        self.loss.forward(&logits, y).0
    }

    /// Predicted class per row (evaluation mode).
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        self.logits(x).argmax_rows()
    }
}

impl GradientModel for Classifier {
    fn logits(&mut self, x: &Tensor) -> Tensor {
        self.note_forward();
        self.net.forward(x, Mode::Eval)
    }

    fn loss_and_input_grad(&mut self, x: &Tensor, y: &[usize]) -> (f32, Tensor) {
        self.note_forward();
        let logits = self.net.forward(x, Mode::Eval);
        let (loss, grad_logits) = self.loss.forward(&logits, y);
        // Attack gradients must not pollute the training gradients: clear
        // before and after the extra backward pass.
        self.net.zero_grad();
        self.note_backward();
        let grad_x = self.net.backward(&grad_logits);
        self.net.zero_grad();
        (loss, grad_x)
    }

    fn custom_input_grad(
        &mut self,
        x: &Tensor,
        grad_of_logits: &mut dyn FnMut(&Tensor) -> Tensor,
    ) -> Tensor {
        self.note_forward();
        let logits = self.net.forward(x, Mode::Eval);
        let grad_logits = grad_of_logits(&logits);
        assert_eq!(grad_logits.shape(), logits.shape(), "custom logit gradient shape mismatch");
        self.net.zero_grad();
        self.note_backward();
        let grad_x = self.net.backward(&grad_logits);
        self.net.zero_grad();
        grad_x
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::optim::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_classifier(seed: u64) -> Classifier {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Sequential::new(vec![
            Box::new(Dense::new(4, 16, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(16, 3, &mut rng)),
        ]);
        Classifier::new(net, 3)
    }

    fn toy_batch(seed: u64) -> (Tensor, Vec<usize>) {
        // three linearly separable clusters on coordinate axes
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..30 {
            let class = i % 3;
            let mut row = vec![0.0f32; 4];
            row[class] = 1.0;
            for v in row.iter_mut() {
                *v += 0.1 * (Tensor::rand_uniform(&mut rng, &[1], -1.0, 1.0).item());
            }
            xs.extend_from_slice(&row);
            ys.push(class);
        }
        (Tensor::from_vec(xs, &[30, 4]), ys)
    }

    #[test]
    fn training_learns_separable_data() {
        let mut clf = tiny_classifier(0);
        let (x, y) = toy_batch(1);
        let mut opt = Sgd::new(0.5);
        for _ in 0..100 {
            clf.train_batch(&x, &y, &mut opt);
        }
        let acc = crate::metrics::accuracy(&clf.logits(&x), &y);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut clf = tiny_classifier(2);
        let (x, y) = toy_batch(3);
        let x = x.rows(0..4);
        let y = &y[..4];
        let (_, grad) = clf.loss_and_input_grad(&x, y);
        let h = 1e-2;
        for i in (0..x.len()).step_by(3) {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += h;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= h;
            let num = (clf.eval_loss(&xp, y) - clf.eval_loss(&xm, y)) / (2.0 * h);
            let ana = grad.as_slice()[i];
            assert!(
                (num - ana).abs() < 2e-2 * 1.0f32.max(num.abs()),
                "input grad[{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn attack_gradients_do_not_leak_into_training() {
        let mut a = tiny_classifier(7);
        let mut b = tiny_classifier(7);
        let (x, y) = toy_batch(4);
        // model a computes an input gradient first; both then take one step
        let _ = a.loss_and_input_grad(&x, &y);
        let mut opt_a = Sgd::new(0.1);
        let mut opt_b = Sgd::new(0.1);
        let la = a.train_batch(&x, &y, &mut opt_a);
        let lb = b.train_batch(&x, &y, &mut opt_b);
        assert_eq!(la, lb);
        assert_eq!(a.logits(&x), b.logits(&x));
    }

    #[test]
    fn pass_counters_track_work() {
        let mut clf = tiny_classifier(0);
        let (x, y) = toy_batch(1);
        assert_eq!(clf.forward_passes(), 0);
        let _ = clf.logits(&x);
        assert_eq!((clf.forward_passes(), clf.backward_passes()), (1, 0));
        let _ = clf.loss_and_input_grad(&x, &y);
        assert_eq!((clf.forward_passes(), clf.backward_passes()), (2, 1));
        let mut opt = Sgd::new(0.1);
        let _ = clf.train_batch(&x, &y, &mut opt);
        assert_eq!((clf.forward_passes(), clf.backward_passes()), (3, 2));
        clf.reset_pass_counters();
        assert_eq!((clf.forward_passes(), clf.backward_passes()), (0, 0));
    }

    #[test]
    fn predict_returns_argmax() {
        let mut clf = tiny_classifier(0);
        let (x, _) = toy_batch(1);
        let preds = clf.predict(&x);
        assert_eq!(preds.len(), 30);
        assert!(preds.iter().all(|&p| p < 3));
    }

    #[test]
    fn num_classes_exposed() {
        assert_eq!(tiny_classifier(0).num_classes(), 3);
    }
}
