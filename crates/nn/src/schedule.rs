//! Learning-rate schedules.

/// A learning-rate schedule: maps an epoch index to a learning rate.
///
/// Trainers query the schedule at the start of every epoch and push the
/// result into the optimizer with
/// [`crate::Optimizer::set_learning_rate`].
pub trait LrSchedule: std::fmt::Debug {
    /// Learning rate for (0-based) `epoch`.
    fn lr_at(&self, epoch: usize) -> f32;
}

/// A constant learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantLr(f32);

impl ConstantLr {
    /// Creates a constant schedule.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        ConstantLr(lr)
    }
}

impl LrSchedule for ConstantLr {
    fn lr_at(&self, _epoch: usize) -> f32 {
        self.0
    }
}

/// Multiplies the rate by `gamma` every `step` epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDecayLr {
    base: f32,
    gamma: f32,
    step: usize,
}

impl StepDecayLr {
    /// Creates a step-decay schedule.
    ///
    /// # Panics
    ///
    /// Panics unless `base > 0`, `0 < gamma <= 1` and `step > 0`.
    pub fn new(base: f32, gamma: f32, step: usize) -> Self {
        assert!(base > 0.0, "learning rate must be positive");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma {gamma} not in (0, 1]");
        assert!(step > 0, "step must be positive");
        StepDecayLr { base, gamma, step }
    }
}

impl LrSchedule for StepDecayLr {
    fn lr_at(&self, epoch: usize) -> f32 {
        self.base * self.gamma.powi((epoch / self.step) as i32)
    }
}

/// Exponential decay: `base * gamma^epoch`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialDecayLr {
    base: f32,
    gamma: f32,
}

impl ExponentialDecayLr {
    /// Creates an exponential-decay schedule.
    ///
    /// # Panics
    ///
    /// Panics unless `base > 0` and `0 < gamma <= 1`.
    pub fn new(base: f32, gamma: f32) -> Self {
        assert!(base > 0.0, "learning rate must be positive");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma {gamma} not in (0, 1]");
        ExponentialDecayLr { base, gamma }
    }
}

impl LrSchedule for ExponentialDecayLr {
    fn lr_at(&self, epoch: usize) -> f32 {
        self.base * self.gamma.powi(epoch as i32)
    }
}

/// Cosine annealing from `base` down to `min` over `period` epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineAnnealingLr {
    base: f32,
    min: f32,
    period: usize,
}

impl CosineAnnealingLr {
    /// Creates a cosine-annealing schedule.
    ///
    /// # Panics
    ///
    /// Panics unless `base >= min > 0` and `period > 0`.
    pub fn new(base: f32, min: f32, period: usize) -> Self {
        assert!(min > 0.0 && base >= min, "need base >= min > 0");
        assert!(period > 0, "period must be positive");
        CosineAnnealingLr { base, min, period }
    }
}

impl LrSchedule for CosineAnnealingLr {
    fn lr_at(&self, epoch: usize) -> f32 {
        let t = (epoch % self.period) as f32 / self.period as f32;
        self.min + 0.5 * (self.base - self.min) * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = ConstantLr::new(0.1);
        assert_eq!(s.lr_at(0), 0.1);
        assert_eq!(s.lr_at(1000), 0.1);
    }

    #[test]
    fn step_decay_halves_every_ten() {
        let s = StepDecayLr::new(1.0, 0.5, 10);
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert_eq!(s.lr_at(10), 0.5);
        assert_eq!(s.lr_at(25), 0.25);
    }

    #[test]
    fn exponential_decay_monotone() {
        let s = ExponentialDecayLr::new(1.0, 0.9);
        assert!(s.lr_at(1) < s.lr_at(0));
        assert!((s.lr_at(2) - 0.81).abs() < 1e-6);
    }

    #[test]
    fn cosine_hits_extremes() {
        let s = CosineAnnealingLr::new(1.0, 0.01, 10);
        assert!((s.lr_at(0) - 1.0).abs() < 1e-6);
        // halfway through the period the rate is the midpoint
        let mid = s.lr_at(5);
        assert!((mid - (0.01 + 0.5 * 0.99)).abs() < 1e-6);
        // schedule is periodic
        assert_eq!(s.lr_at(0), s.lr_at(10));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn constant_rejects_zero() {
        ConstantLr::new(0.0);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn step_decay_rejects_bad_gamma() {
        StepDecayLr::new(0.1, 1.5, 5);
    }
}
