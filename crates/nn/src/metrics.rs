//! Classification metrics.

use simpadv_tensor::Tensor;

/// Fraction of rows whose argmax prediction equals the label.
///
/// # Panics
///
/// Panics if `logits` is not `[n, c]` or `labels.len() != n`.
///
/// # Example
///
/// ```
/// use simpadv_nn::accuracy;
/// use simpadv_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], &[2, 2]);
/// assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
/// ```
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(logits.rank(), 2, "accuracy expects [n, c] logits");
    assert_eq!(logits.shape()[0], labels.len(), "label count mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / labels.len() as f32
}

/// Fraction of rows whose label is among the `k` highest logits.
///
/// # Panics
///
/// Panics if `k == 0`, `logits` is not `[n, c]`, or label counts mismatch.
pub fn accuracy_topk(logits: &Tensor, labels: &[usize], k: usize) -> f32 {
    assert!(k > 0, "top-k needs k > 0");
    assert_eq!(logits.rank(), 2, "accuracy_topk expects [n, c] logits");
    assert_eq!(logits.shape()[0], labels.len(), "label count mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let c = logits.shape()[1];
    let s = logits.as_slice();
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = &s[i * c..(i + 1) * c];
        let target = row[label];
        // rank = number of strictly larger entries
        let rank = row.iter().filter(|&&v| v > target).count();
        if rank < k {
            correct += 1;
        }
    }
    correct as f32 / labels.len() as f32
}

/// A `c × c` confusion matrix: `counts[true][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix over `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        ConfusionMatrix { classes, counts: vec![0; classes * classes] }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.classes && predicted < self.classes, "class index out of range");
        self.counts[truth * self.classes + predicted] += 1;
    }

    /// The count at `(truth, predicted)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        assert!(truth < self.classes && predicted < self.classes, "class index out of range");
        self.counts[truth * self.classes + predicted]
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass / total); 0 when empty.
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|i| self.counts[i * self.classes + i]).sum();
        diag as f32 / total as f32
    }

    /// Per-class recall: diagonal / row sum (`None` for unseen classes).
    ///
    /// # Panics
    ///
    /// Panics when `class` is out of range for the matrix.
    pub fn recall(&self, class: usize) -> Option<f32> {
        assert!(class < self.classes, "class index out of range");
        let row: u64 = (0..self.classes).map(|j| self.counts[class * self.classes + j]).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f32 / row as f32)
        }
    }

    /// Per-class precision: diagonal / column sum (`None` when never
    /// predicted).
    ///
    /// # Panics
    ///
    /// Panics when `class` is out of range for the matrix.
    pub fn precision(&self, class: usize) -> Option<f32> {
        assert!(class < self.classes, "class index out of range");
        let col: u64 = (0..self.classes).map(|i| self.counts[i * self.classes + class]).sum();
        if col == 0 {
            None
        } else {
            Some(self.count(class, class) as f32 / col as f32)
        }
    }
}

/// Builds a confusion matrix from logits and labels.
///
/// # Panics
///
/// Panics on shape mismatches or labels outside `0..c`.
pub fn confusion_matrix(logits: &Tensor, labels: &[usize]) -> ConfusionMatrix {
    assert_eq!(logits.rank(), 2, "confusion_matrix expects [n, c] logits");
    assert_eq!(logits.shape()[0], labels.len(), "label count mismatch");
    let c = logits.shape()[1];
    let mut m = ConfusionMatrix::new(c);
    for (pred, &truth) in logits.argmax_rows().into_iter().zip(labels) {
        m.record(truth, pred);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]);
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&Tensor::zeros(&[0, 2]), &[]), 0.0);
    }

    #[test]
    fn topk_widens_with_k() {
        let logits = Tensor::from_vec(vec![0.5, 0.9, 0.1, 0.8, 0.2, 0.6], &[2, 3]);
        // labels: row0 true=0 (rank 2), row1 true=2 (rank 2)
        assert_eq!(accuracy_topk(&logits, &[0, 2], 1), 0.0);
        assert_eq!(accuracy_topk(&logits, &[0, 2], 2), 1.0);
        // top-1 equals plain accuracy
        assert_eq!(accuracy_topk(&logits, &[1, 0], 1), accuracy(&logits, &[1, 0]));
        assert_eq!(accuracy_topk(&Tensor::zeros(&[0, 3]), &[], 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "k > 0")]
    fn topk_rejects_zero_k() {
        accuracy_topk(&Tensor::zeros(&[1, 2]), &[0], 0);
    }

    #[test]
    fn confusion_matrix_diagonal() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let m = confusion_matrix(&logits, &[0, 1]);
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(1, 1), 1);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.total(), 2);
    }

    #[test]
    fn recall_and_precision() {
        let mut m = ConfusionMatrix::new(2);
        m.record(0, 0);
        m.record(0, 1);
        m.record(1, 1);
        assert_eq!(m.recall(0), Some(0.5));
        assert_eq!(m.recall(1), Some(1.0));
        assert_eq!(m.precision(1), Some(0.5));
        assert_eq!(m.precision(0), Some(1.0));
    }

    #[test]
    fn unseen_class_has_no_recall() {
        let m = ConfusionMatrix::new(3);
        assert_eq!(m.recall(2), None);
        assert_eq!(m.precision(2), None);
        assert_eq!(m.accuracy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_validates_indices() {
        ConfusionMatrix::new(2).record(2, 0);
    }
}
