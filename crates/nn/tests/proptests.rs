//! Property-based tests for the neural-network substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simpadv_nn::{
    accuracy, log_softmax, softmax, Dense, Layer, Loss, Mode, Relu, Sequential, SoftmaxCrossEntropy,
};
use simpadv_tensor::Tensor;

fn logits_strategy() -> impl Strategy<Value = (Tensor, Vec<usize>)> {
    (1usize..6, 2usize..6).prop_flat_map(|(n, c)| {
        (prop::collection::vec(-8.0f32..8.0, n * c), prop::collection::vec(0usize..c, n))
            .prop_map(move |(data, labels)| (Tensor::from_vec(data, &[n, c]), labels))
    })
}

proptest! {
    #[test]
    fn softmax_rows_are_distributions((logits, _labels) in logits_strategy()) {
        let p = softmax(&logits);
        let n = logits.shape()[0];
        for i in 0..n {
            let row = p.row(i);
            prop_assert!(row.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
            prop_assert!((row.sum() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant((logits, _labels) in logits_strategy(), shift in -5.0f32..5.0) {
        let a = softmax(&logits);
        let b = softmax(&logits.add_scalar(shift));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_never_positive((logits, _labels) in logits_strategy()) {
        let lp = log_softmax(&logits);
        prop_assert!(lp.as_slice().iter().all(|&v| v <= 1e-6));
    }

    #[test]
    fn cross_entropy_nonnegative((logits, labels) in logits_strategy()) {
        let (loss, grad) = SoftmaxCrossEntropy::new().forward(&logits, &labels);
        prop_assert!(loss >= 0.0);
        prop_assert_eq!(grad.shape(), logits.shape());
        // mean-of-batch gradient rows each sum to 0 (softmax minus one-hot)
        let n = logits.shape()[0];
        for i in 0..n {
            prop_assert!(grad.row(i).sum().abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_step_on_fixed_batch_reduces_loss(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(5, 12, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(12, 3, &mut rng)),
        ]);
        let x = Tensor::rand_uniform(&mut rng, &[6, 5], -1.0, 1.0);
        let y: Vec<usize> = (0..6).map(|i| i % 3).collect();
        let loss_fn = SoftmaxCrossEntropy::new();

        let logits = net.forward(&x, Mode::Train);
        let (l0, grad) = loss_fn.forward(&logits, &y);
        net.zero_grad();
        let _ = net.backward(&grad);
        // hand-rolled SGD step with a tiny rate: loss must not increase
        for p in net.params() {
            p.value.add_scaled(p.grad, -1e-2);
        }
        let (l1, _) = loss_fn.forward(&net.forward(&x, Mode::Train), &y);
        prop_assert!(l1 <= l0 + 1e-4, "loss rose from {l0} to {l1}");
    }

    #[test]
    fn accuracy_bounded((logits, labels) in logits_strategy()) {
        let a = accuracy(&logits, &labels);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn backward_input_grad_shape_matches(seed in 0u64..100, n in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(4, 7, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(7, 2, &mut rng)),
        ]);
        let x = Tensor::rand_uniform(&mut rng, &[n, 4], -1.0, 1.0);
        let y = net.forward(&x, Mode::Eval);
        let gx = net.backward(&Tensor::ones(y.shape()));
        prop_assert_eq!(gx.shape(), x.shape());
    }
}
