//! End-to-end exercises of the campaign retry state machine against the
//! `fakecell` child (a scriptable stand-in that speaks the real child
//! protocol: durable attempt counter, sealed report, exit codes).

use simpadv_obs::sweep::compare_sweep;
use simpadv_sweep::manifest::{CampaignConfig, ManifestStore, MANIFEST_VERSION};
use simpadv_sweep::supervise::ChildCommand;
use simpadv_sweep::{Campaign, CellStatus, ChaosConfig, GridSpec, RetryConfig, SweepError};
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simpadv-sweep-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn grid(methods: &[&str], samples: &[u64]) -> GridSpec {
    GridSpec {
        dataset: "mnist".into(),
        epochs: 1,
        seed: 2019,
        test_samples: 20,
        methods: methods.iter().map(|m| m.to_string()).collect(),
        epsilons: vec![0.3],
        samples: samples.to_vec(),
        threads: vec![1],
    }
}

fn config(grid_spec: GridSpec, retry: RetryConfig) -> CampaignConfig {
    CampaignConfig {
        schema_version: MANIFEST_VERSION,
        grid: grid_spec,
        retry,
        cell_deadline_us: 20_000_000,
    }
}

/// Fast-backoff retry config so failure tests stay quick.
fn quick_retry(max_attempts: u32, budget: u32) -> RetryConfig {
    RetryConfig { base_us: 200, cap_us: 2_000, max_attempts, budget }
}

fn fakecell(prefix: &[&str]) -> ChildCommand {
    ChildCommand {
        program: PathBuf::from(env!("CARGO_BIN_EXE_fakecell")),
        prefix_args: prefix.iter().map(|a| a.to_string()).collect(),
    }
}

fn run_campaign(
    dir: &Path,
    cfg: CampaignConfig,
    child: &ChildCommand,
    chaos: ChaosConfig,
) -> simpadv_obs::sweep::SweepArtifact {
    let mut campaign = Campaign::start(dir, cfg).unwrap();
    let mut progress = Vec::new();
    campaign.run(child, chaos, &dir.join("BENCH_sweep.json"), &mut progress).unwrap()
}

#[test]
fn healthy_campaign_completes_every_cell() {
    let dir = tmpdir("healthy");
    let cfg = config(grid(&["vanilla", "proposed"], &[16, 32]), quick_retry(3, 8));
    let artifact = run_campaign(&dir, cfg, &fakecell(&[]), ChaosConfig::default());

    assert_eq!(artifact.completed, 4);
    assert!(artifact.quarantined.is_empty());
    assert_eq!(artifact.meta.attempts_total, 4, "one attempt per healthy cell");
    assert_eq!(artifact.meta.retries_spent, 0);
    assert_eq!(artifact.cells[0].id, "c000-vanilla-e300m-s16-t1");
    // The artifact landed on disk as plain JSON.
    let text = std::fs::read_to_string(dir.join("BENCH_sweep.json")).unwrap();
    assert!(text.contains("\"experiment\": \"sweep\""));
    // The manifest reached a terminal generation.
    let (_, manifest) = ManifestStore::open(&dir).unwrap().load_latest().unwrap().unwrap();
    assert!(manifest.is_finished());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crashing_cells_are_retried_and_produce_identical_results() {
    // Reference: no failures injected.
    let ref_dir = tmpdir("retry-ref");
    let reference = run_campaign(
        &ref_dir,
        config(grid(&["vanilla"], &[16, 32]), quick_retry(4, 8)),
        &fakecell(&[]),
        ChaosConfig::default(),
    );

    // Same grid, but every cell crashes twice before succeeding.
    let dir = tmpdir("retry");
    let artifact = run_campaign(
        &dir,
        config(grid(&["vanilla"], &[16, 32]), quick_retry(4, 8)),
        &fakecell(&["--fakecell-fail-times", "2"]),
        ChaosConfig::default(),
    );

    assert_eq!(artifact.completed, 2);
    assert_eq!(artifact.meta.retries_spent, 4, "two retries per cell");
    assert_eq!(artifact.meta.attempts_total, 6);
    // The logical sections are bitwise identical to the crash-free run;
    // only meta (attempts/retries/wall) differs.
    assert_eq!(artifact.cells, reference.cells);
    assert_eq!(artifact.scale, reference.scale);
    let report = compare_sweep(&reference, &artifact);
    assert!(report.passed(), "{:?}", report.regressions);
    assert!(report.warnings.iter().any(|w| w.contains("retries")), "{:?}", report.warnings);
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn attempt_cap_quarantines_without_killing_the_campaign() {
    let dir = tmpdir("quarantine");
    // Both cells fail forever; the campaign must still terminate with
    // both quarantined rather than erroring out.
    let artifact = run_campaign(
        &dir,
        config(grid(&["vanilla"], &[16, 32]), quick_retry(2, 8)),
        &fakecell(&["--fakecell-fail-times", "99"]),
        ChaosConfig::default(),
    );
    assert_eq!(artifact.completed, 0);
    assert_eq!(artifact.quarantined.len(), 2);
    assert!(
        artifact.quarantined[0].cause.contains("attempt cap"),
        "{}",
        artifact.quarantined[0].cause
    );
    assert!(artifact.quarantined[0].cause.contains("exited with code 3"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_budget_bounds_total_retries() {
    let dir = tmpdir("budget");
    // Budget of 1 retry across the campaign: the first failing cell
    // consumes it; the second is quarantined without another retry.
    let artifact = run_campaign(
        &dir,
        config(grid(&["vanilla"], &[16, 32]), quick_retry(10, 1)),
        &fakecell(&["--fakecell-fail-times", "99"]),
        ChaosConfig::default(),
    );
    assert_eq!(artifact.meta.retries_spent, 1);
    assert_eq!(artifact.quarantined.len(), 2);
    assert!(
        artifact.quarantined.iter().any(|q| q.cause.contains("budget exhausted")),
        "{:?}",
        artifact.quarantined
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_overrun_is_a_classified_failure() {
    let dir = tmpdir("deadline");
    let mut cfg = config(grid(&["vanilla"], &[16]), quick_retry(1, 0));
    cfg.cell_deadline_us = 30_000;
    let artifact = run_campaign(
        &dir,
        cfg,
        &fakecell(&["--fakecell-hang-us", "20000000"]),
        ChaosConfig::default(),
    );
    assert_eq!(artifact.quarantined.len(), 1);
    assert!(
        artifact.quarantined[0].cause.contains("deadline"),
        "{}",
        artifact.quarantined[0].cause
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_kill_mid_cell_is_retried_to_the_same_result() {
    let ref_dir = tmpdir("chaos-ref");
    let reference = run_campaign(
        &ref_dir,
        config(grid(&["vanilla"], &[16]), quick_retry(4, 8)),
        &fakecell(&[]),
        ChaosConfig::default(),
    );

    let dir = tmpdir("chaos");
    let artifact = run_campaign(
        &dir,
        config(grid(&["vanilla"], &[16]), quick_retry(4, 8)),
        // The child hangs long enough for the chaos SIGKILL to land
        // twice; the third attempt runs unharassed and completes.
        &fakecell(&["--fakecell-hang-us", "300000"]),
        ChaosConfig {
            kill_cell_after_us: Some(30_000),
            kill_cell_times: 2,
            child_failpoints: None,
        },
    );
    assert_eq!(artifact.completed, 1);
    assert_eq!(artifact.meta.retries_spent, 2);
    assert_eq!(artifact.cells, reference.cells, "kills must not change results");
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn orchestrator_death_mid_cell_resumes_exactly() {
    let dir = tmpdir("resume");
    let cfg = config(grid(&["vanilla", "proposed"], &[16]), quick_retry(4, 8));

    // Simulate an orchestrator killed mid-campaign: cell 0 done, cell 1
    // charged and Running when the process died. Build that manifest
    // history through the real store, including the child's completed
    // report for cell 0.
    {
        let mut campaign = Campaign::start(&dir, cfg.clone()).unwrap();
        let mut progress = Vec::new();
        campaign
            .run(
                &fakecell(&[]),
                ChaosConfig::default(),
                &dir.join("BENCH_sweep_pre.json"),
                &mut progress,
            )
            .unwrap();
        // Rewind the terminal manifest into the mid-flight shape the
        // crash would have left: cell 1 Running with one attempt
        // charged and its report deleted (the child never finished).
        let store = ManifestStore::open(&dir).unwrap();
        let (_, mut manifest) = store.load_latest().unwrap().unwrap();
        manifest.cells[1].status = CellStatus::Running;
        manifest.cells[1].attempts = 1;
        let report = dir.join("cells").join(&manifest.cells[1].spec.id).join("report.json");
        std::fs::remove_file(&report).unwrap();
        store.save(&manifest).unwrap();
    }

    let mut campaign = Campaign::resume(&dir).unwrap();
    assert_eq!(campaign.manifest().count(CellStatus::Running), 1);
    let mut progress = Vec::new();
    let artifact = campaign
        .run(&fakecell(&[]), ChaosConfig::default(), &dir.join("BENCH_sweep.json"), &mut progress)
        .unwrap();

    assert_eq!(artifact.completed, 2);
    assert!(artifact.quarantined.is_empty());
    // The interrupted attempt was already charged; the resumed run
    // spawned exactly one more child for cell 1.
    assert_eq!(artifact.meta.attempts_total, 3);
    assert_eq!(artifact.meta.retries_spent, 1);
    let log = String::from_utf8(progress).unwrap();
    assert!(log.contains("folded 1 in-flight cell"), "{log}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn start_refuses_to_clobber_and_resume_needs_a_manifest() {
    let dir = tmpdir("guards");
    let cfg = config(grid(&["vanilla"], &[16]), quick_retry(2, 2));
    let _ = Campaign::start(&dir, cfg.clone()).unwrap();
    let Err(err) = Campaign::start(&dir, cfg) else { panic!("second start must fail") };
    assert!(matches!(&err, SweepError::Config(m) if m.contains("--resume")), "{err}");

    let empty = tmpdir("guards-empty");
    let Err(err) = Campaign::resume(&empty) else { panic!("resume of empty dir must fail") };
    assert!(matches!(err, SweepError::NothingToResume(_)), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&empty);
}

#[test]
fn completed_cell_with_damaged_report_is_not_trusted() {
    // Exit 0 is not completion: the sealed report must validate. A
    // child whose report was torn (simulated by corrupting it between
    // attempts via failpoint-style damage) forces a retry, and the
    // retried attempt rewrites a valid report.
    let dir = tmpdir("torn-report");
    let cfg = config(grid(&["vanilla"], &[16]), quick_retry(3, 4));
    let mut campaign = Campaign::start(&dir, cfg).unwrap();

    // First, run a child that "completes" but whose report we damage
    // cannot be arranged mid-run without racing the supervisor; instead
    // verify the validation path directly: a healthy run, then corrupt
    // the report and confirm a fresh aggregate attempt rejects it.
    let mut progress = Vec::new();
    campaign
        .run(&fakecell(&[]), ChaosConfig::default(), &dir.join("BENCH_sweep.json"), &mut progress)
        .unwrap();
    let report = dir.join("cells").join("c000-vanilla-e300m-s16-t1").join("report.json");
    let mut bytes = std::fs::read(&report).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x20;
    std::fs::write(&report, &bytes).unwrap();

    let mut campaign = Campaign::resume(&dir).unwrap();
    let err = campaign
        .run(&fakecell(&[]), ChaosConfig::default(), &dir.join("BENCH_sweep.json"), &mut progress)
        .unwrap_err();
    assert!(matches!(err, SweepError::Persist(_)), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
