//! The campaign driver: expand, supervise, retry, quarantine, aggregate.
//!
//! ## Retry state machine
//!
//! ```text
//!   Pending --spawn (attempts += 1, save)--> Running
//!   Running --exit 0 + valid report (save)--> Done
//!   Running --crash/kill/deadline (save)--> Pending'   (retry path)
//!   Pending' --attempts or budget exhausted (save)--> Quarantined
//!   Pending' --backoff sleep, then spawn--> Running
//! ```
//!
//! Every arrow that changes the manifest saves a new sealed generation
//! *before* the driver acts on it, so an orchestrator SIGKILL between
//! any two arrows is recoverable: `--resume` reloads the newest valid
//! generation and re-enters the machine at the same cell. The one
//! ambiguous state is `Running`-on-load — the driver died with a child
//! in flight. The attempt was charged at spawn time, and the child's
//! work is not lost (it checkpoints every epoch and the next attempt
//! resumes from its latest valid generation), so resume simply folds
//! `Running` back to the retry path.
//!
//! ## Why the aggregate is bitwise reproducible
//!
//! Cell training is bitwise deterministic given (dataset, method, eps,
//! samples, seed) — that is the workspace's core determinism contract —
//! and checkpoint resume restores the accumulated report state, so a
//! cell that crashed at any point and re-ran produces the identical
//! sealed report. The aggregate's logical sections are a pure function
//! of those reports in grid order; attempts, retries and wall time are
//! quarantined in `meta`.

use crate::backoff_for;
use crate::chaos::{ChaosConfig, ChaosState};
use crate::error::SweepError;
use crate::manifest::{CampaignConfig, CampaignManifest, CellStatus, ManifestStore};
use crate::report::CellReport;
use crate::supervise::{run_cell, CellOutcome, ChildCommand, Supervision};
use simpadv_obs::sweep::{
    QuarantineRow, SweepArtifact, SweepCellRow, SweepMeta, SweepScale, SWEEP_EXPERIMENT,
    SWEEP_SCHEMA_VERSION,
};
use simpadv_resilience::backoff::derive_seed;
use simpadv_trace::clock::WallTimer;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A campaign bound to its durable home directory.
pub struct Campaign {
    dir: PathBuf,
    store: ManifestStore,
    manifest: CampaignManifest,
    trace_dir: Option<PathBuf>,
}

/// Where a cell's durable files live: `<dir>/cells/<id>/`.
fn cell_dir(campaign_dir: &Path, cell_id: &str) -> PathBuf {
    campaign_dir.join("cells").join(cell_id)
}

impl Campaign {
    /// Creates a fresh campaign: validates the config, writes manifest
    /// generation 1, and refuses to clobber an existing campaign.
    ///
    /// # Errors
    ///
    /// [`SweepError::Config`] when `dir` already holds a valid manifest
    /// (resume instead) or the config is invalid; persistence errors
    /// otherwise.
    pub fn start(dir: &Path, config: CampaignConfig) -> Result<Campaign, SweepError> {
        let store = ManifestStore::open(dir)?;
        if store.load_latest()?.is_some() {
            return Err(SweepError::Config(format!(
                "{} already holds a campaign; rerun with --resume to continue it",
                dir.display()
            )));
        }
        let manifest = CampaignManifest::new(config)?;
        store.save(&manifest)?;
        Ok(Campaign { dir: dir.to_path_buf(), store, manifest, trace_dir: None })
    }

    /// Reopens a campaign from its newest valid manifest generation.
    ///
    /// # Errors
    ///
    /// [`SweepError::NothingToResume`] when no valid generation exists.
    pub fn resume(dir: &Path) -> Result<Campaign, SweepError> {
        let store = ManifestStore::open(dir)?;
        let Some((_, manifest)) = store.load_latest()? else {
            return Err(SweepError::NothingToResume(dir.display().to_string()));
        };
        Ok(Campaign { dir: dir.to_path_buf(), store, manifest, trace_dir: None })
    }

    /// Enables cross-process campaign tracing: each cell attempt writes
    /// its own JSONL trace under `dir`, stitched to the orchestrator's
    /// trace through the attempt span's context (injected into the
    /// child's environment as `SIMPADV_TRACEPARENT`). The caller is
    /// expected to have installed the orchestrator's own sink in the
    /// same directory.
    pub fn set_trace_dir(&mut self, dir: &Path) {
        self.trace_dir = Some(dir.to_path_buf());
    }

    /// Read access to the current manifest (tests, status display).
    pub fn manifest(&self) -> &CampaignManifest {
        &self.manifest
    }

    /// Drives every cell to a terminal status, then writes the
    /// aggregate to `out`. Returns the final artifact.
    ///
    /// `command` launches cell children; `progress` receives one line
    /// per transition (the CLI passes stderr; tests pass a sink).
    ///
    /// # Errors
    ///
    /// Persistence and spawn failures abort the run (safely: the
    /// manifest reflects the last completed transition). Cell failures
    /// never do.
    pub fn run(
        &mut self,
        command: &ChildCommand,
        chaos: ChaosConfig,
        out: &Path,
        progress: &mut dyn Write,
    ) -> Result<SweepArtifact, SweepError> {
        // With a trace directory, the campaign is the root of a
        // cross-process trace whose id is a pure function of the grid
        // seed — a resumed orchestrator regrows the same trace id, so
        // its spans land in the same campaign tree.
        if self.trace_dir.is_some() {
            simpadv_trace::set_trace_root(simpadv_trace::context::derive_trace_id(
                "sweep",
                self.manifest.config.grid.seed,
            ));
        }
        let _campaign_span = simpadv_trace::span!(
            "sweep",
            cells = self.manifest.cells.len() as u64,
            budget = u64::from(self.manifest.config.retry.budget)
        );
        let wall = WallTimer::start();
        let mut chaos = ChaosState::new(chaos);

        // Running-on-load = the previous orchestrator died mid-cell.
        // The attempt was charged at spawn; fold back into the retry
        // path and let the quarantine gate below arbitrate.
        let mut interrupted = 0u32;
        for cell in &mut self.manifest.cells {
            if cell.status == CellStatus::Running {
                cell.status = CellStatus::Pending;
                cell.last_error
                    .get_or_insert_with(|| "orchestrator died while cell was running".to_string());
                interrupted += 1;
            }
        }
        if interrupted > 0 {
            self.store.save(&self.manifest)?;
            let _ = writeln!(progress, "resume: folded {interrupted} in-flight cell(s) back");
        }

        while let Some(i) = self.manifest.cells.iter().position(|c| c.status == CellStatus::Pending)
        {
            self.drive_cell(i, command, &mut chaos, progress)?;
        }

        let artifact = self.aggregate(wall.elapsed_seconds())?;
        simpadv_resilience::write_json_atomic(out, &artifact)?;
        let _ = writeln!(
            progress,
            "campaign done: {} completed, {} quarantined -> {}",
            artifact.completed,
            artifact.quarantined.len(),
            out.display()
        );
        Ok(artifact)
    }

    /// Runs one cell to a terminal status through the retry machine.
    fn drive_cell(
        &mut self,
        i: usize,
        command: &ChildCommand,
        chaos: &mut ChaosState,
        progress: &mut dyn Write,
    ) -> Result<(), SweepError> {
        let (cell_id, cell_index) =
            (self.manifest.cells[i].spec.id.clone(), self.manifest.cells[i].spec.index);
        let _cell_span = simpadv_trace::span!("sweep/cell", index = cell_index);
        let retry = self.manifest.config.retry.clone();
        let policy = backoff_for(&retry);
        let backoff_seed = derive_seed(self.manifest.config.grid.seed, cell_index);

        loop {
            let attempts = self.manifest.cells[i].attempts;
            // Quarantine gate: per-cell attempt cap, then the shared
            // campaign budget (first attempts are free; only re-attempts
            // draw from it).
            if attempts >= retry.max_attempts {
                return self.quarantine(i, "attempt cap reached", progress);
            }
            if attempts > 0 {
                if self.manifest.retries_spent >= retry.budget {
                    return self.quarantine(i, "campaign retry budget exhausted", progress);
                }
                self.manifest.retries_spent += 1;
                simpadv_trace::counter("sweep/retries", 1);
                let delay_us = policy.delay_us(backoff_seed, attempts - 1);
                let _ = writeln!(
                    progress,
                    "cell {cell_id}: retry {attempts} after {delay_us}us backoff"
                );
                crate::supervise::sleep_us(delay_us);
            }

            // Transition: -> Running. Saved BEFORE the spawn so a crash
            // during the child leaves the attempt visibly charged.
            self.manifest.cells[i].status = CellStatus::Running;
            self.manifest.cells[i].attempts += 1;
            self.store.save(&self.manifest)?;
            simpadv_trace::counter("sweep/spawns", 1);

            let attempt = self.manifest.cells[i].attempts;
            // Attempt numbers are charged-at-spawn and never reused, so
            // the per-attempt trace file name is collision-free even
            // across orchestrator crashes and resumes.
            let trace_file = self.trace_dir.as_ref().map(|d| {
                let name = format!("{cell_id}.attempt{attempt:03}.jsonl");
                let path = d.join(&name);
                (name, path)
            });
            // The trace_file field is the collector's orphan detector:
            // an attempt span naming a trace that no stitched events
            // arrived from is a cell that died before its first flush.
            let attempt_span = match &trace_file {
                Some((name, _)) => simpadv_trace::span!(
                    "sweep/attempt",
                    n = u64::from(attempt),
                    trace_file = name.as_str()
                ),
                None => simpadv_trace::span!("sweep/attempt", n = u64::from(attempt)),
            };
            let outcome = {
                let spec = &self.manifest.cells[i].spec;
                let dir = cell_dir(&self.dir, &spec.id);
                std::fs::create_dir_all(&dir)
                    .map_err(|e| SweepError::Supervise(format!("create {}: {e}", dir.display())))?;
                let mut child_env = Vec::new();
                if let (Some((_, path)), Some(ctx)) = (&trace_file, attempt_span.context()) {
                    child_env.push(("SIMPADV_TRACE".to_string(), path.display().to_string()));
                    child_env.push(("SIMPADV_TRACE_FORMAT".to_string(), "jsonl".to_string()));
                    child_env.push(("SIMPADV_TRACEPARENT".to_string(), ctx.encode()));
                }
                let supervision = Supervision {
                    deadline_us: self.manifest.config.cell_deadline_us,
                    kill_after_us: chaos.next_kill_after_us(),
                    child_failpoints: chaos.child_failpoints().map(str::to_string),
                    child_env,
                };
                run_cell(command, &self.cell_args(i), &supervision)?
            };
            drop(attempt_span);

            let report_path = cell_dir(&self.dir, &cell_id).join("report.json");
            // Exit 0 alone is not completion: the report must exist and
            // validate (CRC + schema). A child killed between its last
            // checkpoint and the report rename exits 0-less anyway, but
            // a torn/damaged report with a clean exit is still a retry.
            let failure = match outcome {
                CellOutcome::Completed => match CellReport::load(&report_path) {
                    Ok(_) => None,
                    Err(e) => Some(format!("exit 0 but report invalid: {e}")),
                },
                other => Some(other.describe()),
            };

            match failure {
                None => {
                    self.manifest.cells[i].status = CellStatus::Done;
                    self.manifest.cells[i].last_error = None;
                    self.store.save(&self.manifest)?;
                    simpadv_trace::counter("sweep/completed", 1);
                    let _ = writeln!(progress, "cell {cell_id}: done (attempt {attempt})");
                    return Ok(());
                }
                Some(cause) => {
                    self.manifest.cells[i].status = CellStatus::Pending;
                    self.manifest.cells[i].last_error = Some(cause.clone());
                    self.store.save(&self.manifest)?;
                    let _ = writeln!(progress, "cell {cell_id}: attempt {attempt} failed: {cause}");
                }
            }
        }
    }

    /// Transition: -> Quarantined. Never fatal to the campaign.
    fn quarantine(
        &mut self,
        i: usize,
        gate: &str,
        progress: &mut dyn Write,
    ) -> Result<(), SweepError> {
        let cause = match &self.manifest.cells[i].last_error {
            Some(e) => format!("{gate}; last failure: {e}"),
            None => gate.to_string(),
        };
        self.manifest.cells[i].status = CellStatus::Quarantined;
        self.manifest.cells[i].last_error = Some(cause.clone());
        self.store.save(&self.manifest)?;
        simpadv_trace::counter("sweep/quarantined", 1);
        let _ =
            writeln!(progress, "cell {}: quarantined ({cause})", self.manifest.cells[i].spec.id);
        Ok(())
    }

    /// The child argv for one cell attempt: the CLI `train` verb with a
    /// per-cell checkpoint directory, `--resume latest` so a retried
    /// attempt continues from the crashed one's newest valid
    /// checkpoint, and `--report` as the completion contract.
    fn cell_args(&self, i: usize) -> Vec<String> {
        let spec = &self.manifest.cells[i].spec;
        let grid = &self.manifest.config.grid;
        let dir = cell_dir(&self.dir, &spec.id);
        vec![
            "train".to_string(),
            "--dataset".to_string(),
            grid.dataset.clone(),
            "--method".to_string(),
            spec.method.clone(),
            "--eps".to_string(),
            format!("{}", spec.eps),
            "--epochs".to_string(),
            grid.epochs.to_string(),
            "--samples".to_string(),
            spec.samples.to_string(),
            "--test-samples".to_string(),
            grid.test_samples.to_string(),
            "--seed".to_string(),
            grid.seed.to_string(),
            "--threads".to_string(),
            spec.threads.to_string(),
            "--checkpoint-dir".to_string(),
            dir.join("ckpts").display().to_string(),
            "--checkpoint-every".to_string(),
            "1".to_string(),
            "--resume".to_string(),
            "latest".to_string(),
            "--report".to_string(),
            dir.join("report.json").display().to_string(),
        ]
    }

    /// Builds the aggregate from the terminal manifest + cell reports.
    fn aggregate(&self, wall_total_s: f64) -> Result<SweepArtifact, SweepError> {
        let grid = &self.manifest.config.grid;
        let mut cells = Vec::new();
        let mut quarantined = Vec::new();
        for cell in &self.manifest.cells {
            match cell.status {
                CellStatus::Done => {
                    let report =
                        CellReport::load(&cell_dir(&self.dir, &cell.spec.id).join("report.json"))?;
                    cells.push(SweepCellRow {
                        id: cell.spec.id.clone(),
                        method: cell.spec.method.clone(),
                        eps: f64::from(report.eps),
                        samples: report.samples,
                        threads: cell.spec.threads,
                        final_loss: f64::from(report.final_loss),
                        columns: report.columns.clone(),
                        accuracies: report.accuracies.iter().map(|a| f64::from(*a)).collect(),
                    });
                }
                CellStatus::Quarantined => quarantined.push(QuarantineRow {
                    id: cell.spec.id.clone(),
                    cause: cell
                        .last_error
                        .clone()
                        .unwrap_or_else(|| "retry allowance exhausted".to_string()),
                }),
                CellStatus::Pending | CellStatus::Running => {
                    return Err(SweepError::Config(format!(
                        "cell {} is not terminal; aggregate called too early",
                        cell.spec.id
                    )));
                }
            }
        }
        let attempts_total: u64 = self.manifest.cells.iter().map(|c| u64::from(c.attempts)).sum();
        Ok(SweepArtifact {
            schema_version: SWEEP_SCHEMA_VERSION,
            experiment: SWEEP_EXPERIMENT.to_string(),
            scale: SweepScale {
                dataset: grid.dataset.clone(),
                epochs: grid.epochs,
                seed: grid.seed,
                test_samples: grid.test_samples,
                methods: grid.methods.clone(),
                epsilons: grid.epsilons.iter().map(|e| f64::from(*e)).collect(),
                samples: grid.samples.clone(),
                threads: grid.threads.clone(),
            },
            completed: cells.len() as u64,
            cells,
            quarantined,
            meta: SweepMeta {
                wall_total_s,
                attempts_total,
                retries_spent: u64::from(self.manifest.retries_spent),
                note: SweepArtifact::wall_note(),
            },
        })
    }
}
