//! Supervised execution of one cell attempt as a child process.
//!
//! The orchestrator never trains in-process: each cell is the existing
//! CLI binary run as a child with its own checkpoint directory, so a
//! cell crash (OOM, failpoint, SIGKILL) is an exit status to classify,
//! never orchestrator state to unwind. The supervisor polls the child on
//! a coarse tick, enforcing the per-cell wall deadline (and, under
//! chaos, an injected mid-cell SIGKILL) from the outside.

use crate::error::SweepError;
use simpadv_trace::clock::WallTimer;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Supervisor poll tick. Coarse on purpose: deadlines are wall-clock
/// policy (meta-plane), so +-5ms of slack is irrelevant, and a tight
/// loop would steal CPU from the children being measured.
const POLL_TICK: Duration = Duration::from_millis(5);

/// How an attempt ended, as classified from the child's exit status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// Exit status 0 — the report is expected to exist and validate.
    Completed,
    /// Nonzero exit code (the child itself failed or hit a failpoint).
    Exited(i32),
    /// Terminated by a signal (SIGKILL from chaos, the OOM killer, ...).
    Killed,
    /// The supervisor killed the child at the wall deadline.
    DeadlineExceeded,
}

impl CellOutcome {
    /// Human-readable failure cause for manifests and quarantine rows.
    pub fn describe(&self) -> String {
        match self {
            CellOutcome::Completed => "completed".to_string(),
            CellOutcome::Exited(code) => format!("exited with code {code}"),
            CellOutcome::Killed => "killed by signal".to_string(),
            CellOutcome::DeadlineExceeded => "cell wall deadline exceeded".to_string(),
        }
    }
}

/// How to launch a cell child: the program plus argv prefix shared by
/// every cell (the per-cell `train ...` argv is appended per attempt).
#[derive(Debug, Clone)]
pub struct ChildCommand {
    /// Binary to execute (normally the orchestrator's own executable,
    /// re-entered through its `train` verb).
    pub program: PathBuf,
    /// Arguments inserted before the per-cell ones.
    pub prefix_args: Vec<String>,
}

/// Per-attempt knobs the supervisor enforces from outside the child.
#[derive(Debug, Clone)]
pub struct Supervision {
    /// Wall deadline for this attempt, in microseconds.
    pub deadline_us: u64,
    /// Chaos: SIGKILL the child this long after spawn (µs).
    pub kill_after_us: Option<u64>,
    /// Chaos: `SIMPADV_FAILPOINTS` value injected into the child.
    pub child_failpoints: Option<String>,
    /// Extra environment for the child, applied *after* the scrub —
    /// the orchestrator's deliberate injections (per-attempt trace file
    /// and traceparent) rather than accidental inheritance.
    pub child_env: Vec<(String, String)>,
}

/// Spawns one attempt and supervises it to completion.
///
/// The child runs with stdio detached (`/dev/null`): cell progress is
/// reported through checkpoints and the sealed report, not through a
/// pipe the orchestrator would have to drain. Orchestrator-side
/// failpoints and trace settings are scrubbed from the child's
/// environment so chaos injected into the *orchestrator* never leaks
/// into a *cell* (chaos for cells is opt-in via `child_failpoints`).
///
/// # Errors
///
/// [`SweepError::Supervise`] when the child cannot be spawned or waited
/// on at all — never when the child merely fails, which is an outcome.
pub fn run_cell(
    command: &ChildCommand,
    cell_args: &[String],
    supervision: &Supervision,
) -> Result<CellOutcome, SweepError> {
    let mut cmd = Command::new(&command.program);
    cmd.args(&command.prefix_args)
        .args(cell_args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .env_remove("SIMPADV_FAILPOINTS")
        .env_remove("SIMPADV_TRACE")
        .env_remove("SIMPADV_TRACE_FORMAT")
        .env_remove("SIMPADV_TRACEPARENT");
    if let Some(points) = &supervision.child_failpoints {
        cmd.env("SIMPADV_FAILPOINTS", points);
    }
    for (key, value) in &supervision.child_env {
        cmd.env(key, value);
    }

    let mut child = cmd
        .spawn()
        .map_err(|e| SweepError::Supervise(format!("spawn {}: {e}", command.program.display())))?;

    // Deadlines are wall policy, so the one sanctioned wall source
    // (R10) is the right clock here; nothing it reads feeds a logical
    // field.
    let started = WallTimer::start();

    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                let code = status.code();
                return Ok(match code {
                    Some(0) => CellOutcome::Completed,
                    Some(c) => CellOutcome::Exited(c),
                    // On Unix, no exit code means a signal death; the
                    // chaos kill below also lands here.
                    None => CellOutcome::Killed,
                });
            }
            Ok(None) => {}
            Err(e) => {
                kill_and_reap(&mut child);
                return Err(SweepError::Supervise(format!("wait: {e}")));
            }
        }

        let elapsed_us = started.elapsed_us();
        if let Some(after_us) = supervision.kill_after_us {
            if elapsed_us >= after_us {
                kill_and_reap(&mut child);
                return Ok(CellOutcome::Killed);
            }
        }
        if elapsed_us >= supervision.deadline_us {
            kill_and_reap(&mut child);
            return Ok(CellOutcome::DeadlineExceeded);
        }
        std::thread::sleep(POLL_TICK);
    }
}

/// SIGKILLs the child and reaps it so no zombie outlives the attempt.
fn kill_and_reap(child: &mut Child) {
    let _ = child.kill();
    let _ = child.wait();
}

/// Blocking sleep for backoff delays. Centralized here so the crate has
/// exactly one `std::thread` touchpoint (lint rule R7 carries a single
/// `lint.toml` allow for this file: the orchestrator is a sequential
/// supervisor, not a compute path, so blocking is the correct shape).
pub(crate) fn sleep_us(us: u64) {
    std::thread::sleep(Duration::from_micros(us));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `/bin/sh` is the one child every CI image has; the fakecell bin
    /// covers the realistic protocol in the integration tests.
    fn sh(script: &str) -> (ChildCommand, Vec<String>) {
        (
            ChildCommand { program: PathBuf::from("/bin/sh"), prefix_args: vec!["-c".into()] },
            vec![script.to_string()],
        )
    }

    fn supervision(deadline_us: u64) -> Supervision {
        Supervision {
            deadline_us,
            kill_after_us: None,
            child_failpoints: None,
            child_env: Vec::new(),
        }
    }

    #[test]
    fn classifies_success_and_failure_exits() {
        let (cmd, args) = sh("exit 0");
        assert_eq!(
            run_cell(&cmd, &args, &supervision(10_000_000)).unwrap(),
            CellOutcome::Completed
        );
        let (cmd, args) = sh("exit 3");
        assert_eq!(
            run_cell(&cmd, &args, &supervision(10_000_000)).unwrap(),
            CellOutcome::Exited(3)
        );
    }

    #[test]
    fn deadline_kills_a_runaway_child() {
        let (cmd, args) = sh("sleep 30");
        let outcome = run_cell(&cmd, &args, &supervision(50_000)).unwrap();
        assert_eq!(outcome, CellOutcome::DeadlineExceeded);
    }

    #[test]
    fn chaos_kill_registers_as_a_signal_death() {
        let (cmd, args) = sh("sleep 30");
        let sup = Supervision {
            deadline_us: 10_000_000,
            kill_after_us: Some(20_000),
            child_failpoints: None,
            child_env: Vec::new(),
        };
        assert_eq!(run_cell(&cmd, &args, &sup).unwrap(), CellOutcome::Killed);
    }

    #[test]
    fn missing_binary_is_a_supervise_error_not_an_outcome() {
        let cmd = ChildCommand {
            program: PathBuf::from("/nonexistent/simpadv-binary"),
            prefix_args: vec![],
        };
        let err = run_cell(&cmd, &[], &supervision(1_000_000)).unwrap_err();
        assert!(matches!(err, SweepError::Supervise(_)), "{err}");
    }

    #[test]
    fn orchestrator_failpoints_are_scrubbed_from_children() {
        // The child sees no SIMPADV_FAILPOINTS unless chaos injects one.
        let (cmd, args) = sh("test -z \"$SIMPADV_FAILPOINTS\"");
        std::env::set_var("SIMPADV_FAILPOINTS", "pre-write=1");
        let outcome = run_cell(&cmd, &args, &supervision(10_000_000));
        std::env::remove_var("SIMPADV_FAILPOINTS");
        assert_eq!(outcome.unwrap(), CellOutcome::Completed);

        let (cmd, args) = sh("test \"$SIMPADV_FAILPOINTS\" = probe=1");
        let sup = Supervision {
            deadline_us: 10_000_000,
            kill_after_us: None,
            child_failpoints: Some("probe=1".into()),
            child_env: Vec::new(),
        };
        assert_eq!(run_cell(&cmd, &args, &sup).unwrap(), CellOutcome::Completed);
    }

    #[test]
    fn injected_child_env_survives_the_scrub() {
        // The scrub removes inherited trace settings...
        let (cmd, args) = sh("test -z \"$SIMPADV_TRACE\" && test -z \"$SIMPADV_TRACEPARENT\"");
        std::env::set_var("SIMPADV_TRACEPARENT", "inherited-not-wanted");
        let outcome = run_cell(&cmd, &args, &supervision(10_000_000));
        std::env::remove_var("SIMPADV_TRACEPARENT");
        assert_eq!(outcome.unwrap(), CellOutcome::Completed);

        // ...while deliberate per-attempt injections land after it.
        let (cmd, args) = sh("test \"$SIMPADV_TRACE\" = /tmp/cell.jsonl");
        let sup = Supervision {
            deadline_us: 10_000_000,
            kill_after_us: None,
            child_failpoints: None,
            child_env: vec![("SIMPADV_TRACE".into(), "/tmp/cell.jsonl".into())],
        };
        assert_eq!(run_cell(&cmd, &args, &sup).unwrap(), CellOutcome::Completed);
    }

    #[test]
    fn outcome_descriptions_name_the_cause() {
        assert!(CellOutcome::Exited(7).describe().contains('7'));
        assert!(CellOutcome::Killed.describe().contains("signal"));
        assert!(CellOutcome::DeadlineExceeded.describe().contains("deadline"));
    }
}
