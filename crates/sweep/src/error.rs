//! Typed failures of the campaign orchestrator.

use simpadv_resilience::PersistError;
use std::fmt;

/// Why a campaign could not be started, resumed, or driven forward.
///
/// Note the deliberate absence of a "cell failed" variant: a failing
/// cell is a *state transition* (retry, then quarantine), never an
/// orchestrator error — the campaign degrades gracefully instead of
/// aborting.
#[derive(Debug)]
pub enum SweepError {
    /// The grid or retry configuration is unusable.
    Config(String),
    /// Manifest or report persistence failed.
    Persist(PersistError),
    /// A child process could not be spawned or awaited at all (distinct
    /// from the child running and failing, which is retried).
    Supervise(String),
    /// `--resume` found no valid manifest to continue from.
    NothingToResume(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Config(msg) => write!(f, "invalid campaign config: {msg}"),
            SweepError::Persist(e) => write!(f, "campaign persistence: {e}"),
            SweepError::Supervise(msg) => write!(f, "cell supervision: {msg}"),
            SweepError::NothingToResume(dir) => {
                write!(f, "no valid campaign manifest under {dir}; start without --resume")
            }
        }
    }
}

impl std::error::Error for SweepError {}

impl From<PersistError> for SweepError {
    fn from(e: PersistError) -> Self {
        SweepError::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_mode() {
        assert!(SweepError::Config("empty grid".into()).to_string().contains("empty grid"));
        assert!(SweepError::NothingToResume("/tmp/x".into()).to_string().contains("--resume"));
        assert!(SweepError::Supervise("spawn: ENOENT".into()).to_string().contains("spawn"));
    }
}
