//! # simpadv-sweep
//!
//! Supervised, crash-resilient campaign orchestration.
//!
//! The paper's claims are comparative — Proposed vs. ATDA vs. Free vs.
//! BIM across epsilons and training scales — so reproducing them means
//! running a *grid* of training cells, and a grid is only as
//! trustworthy as its weakest run. This crate makes the campaign itself
//! a durable, restartable artifact:
//!
//! * [`grid`] — the declarative trainer x epsilon x scale x threads
//!   cross product, expanded deterministically into [`grid::CellSpec`]s
//!   with stable ids;
//! * [`supervise`] — each cell runs as a supervised **child process**
//!   (the existing CLI's `train` verb) with its own checkpoint
//!   directory and wall deadline; a crash is an exit status to
//!   classify, never orchestrator state to unwind;
//! * [`manifest`] — campaign state lives in a generation-numbered,
//!   CRC-sealed manifest (via `simpadv-resilience`), saved after every
//!   cell transition, so SIGKILLing the orchestrator at any instant
//!   loses at most the in-flight child's most recent epoch;
//! * [`campaign`] — the retry state machine: failed cells back off on
//!   the shared capped-exponential schedule
//!   ([`simpadv_resilience::backoff`], seeded per cell from the
//!   campaign seed), resume from their latest valid checkpoint, and
//!   quarantine — rather than abort the campaign — once the per-cell
//!   attempt cap or campaign-wide retry budget is spent;
//! * [`report`] — the sealed per-cell completion contract, and
//! * [`chaos`] — deliberate mid-cell SIGKILL and child failpoint
//!   injection, so the recovery path is exercised by CI rather than
//!   trusted.
//!
//! The output is `BENCH_sweep.json`
//! ([`simpadv_obs::sweep::SweepArtifact`]): logical per-cell rows that
//! must reproduce bitwise whether or not the campaign was interrupted,
//! plus an explicit quarantine list, with retry effort confined to
//! `meta`.

pub mod campaign;
pub mod chaos;
pub mod error;
pub mod grid;
pub mod manifest;
pub mod report;
pub mod supervise;

pub use campaign::Campaign;
pub use chaos::ChaosConfig;
pub use error::SweepError;
pub use grid::{CellSpec, GridSpec, KNOWN_METHODS};
pub use manifest::{
    CampaignConfig, CampaignManifest, CellState, CellStatus, RetryConfig, MANIFEST_VERSION,
};
pub use report::{CellReport, CELL_REPORT_VERSION};
pub use supervise::{CellOutcome, ChildCommand};

use simpadv_resilience::BackoffPolicy;

/// The [`BackoffPolicy`] a persisted [`RetryConfig`] denotes. Pure, so
/// a resumed orchestrator reconstructs the killed one's schedule
/// exactly.
pub fn backoff_for(retry: &RetryConfig) -> BackoffPolicy {
    BackoffPolicy::new(retry.base_us, retry.cap_us.max(retry.base_us))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_for_is_pure_and_total() {
        let retry = RetryConfig { base_us: 100, cap_us: 1_000, max_attempts: 3, budget: 5 };
        assert_eq!(backoff_for(&retry).schedule_us(7, 4), backoff_for(&retry).schedule_us(7, 4));
        // A degenerate cap (validated away at manifest build time) is
        // still clamped rather than panicking.
        let degenerate = RetryConfig { base_us: 100, cap_us: 1, max_attempts: 1, budget: 0 };
        assert_eq!(backoff_for(&degenerate).delay_us(0, 0), 100);
    }
}
