//! A scriptable stand-in for the CLI `train` child, used by the sweep
//! crate's integration tests (`CARGO_BIN_EXE_fakecell`).
//!
//! It speaks exactly the child protocol the orchestrator relies on —
//! parse a `train ...` argv, persist state under `--checkpoint-dir`,
//! and write a sealed [`CellReport`] to `--report` before exiting 0 —
//! while letting tests script failures through extra leading flags
//! (passed via `ChildCommand::prefix_args`):
//!
//! * `--fakecell-fail-times N` — exit 3 for the first `N` attempts of
//!   this cell (the attempt counter is durable, in the checkpoint dir,
//!   so retries see it);
//! * `--fakecell-hang-us N` — sleep before doing anything, so deadline
//!   and chaos-kill paths can be exercised.
//!
//! The report is a pure function of the `train` argv — never of the
//! attempt number — mirroring the real trainer's determinism contract:
//! a cell that crashed and retried must produce a bitwise-identical
//! report.

use simpadv_sweep::report::{CellReport, CELL_REPORT_VERSION};
use simpadv_sweep::SweepError;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn main() {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            // The orchestrator nulls our stderr; the exit code is the
            // only channel it reads.
            let _ = e;
            std::process::exit(2);
        }
    }
}

fn run(args: Vec<String>) -> Result<i32, SweepError> {
    let mut opts: BTreeMap<String, String> = BTreeMap::new();
    let mut it = args.into_iter().peekable();
    while let Some(arg) = it.next() {
        if arg == "train" {
            continue;
        }
        let Some(key) = arg.strip_prefix("--") else {
            return Err(SweepError::Config(format!("unexpected positional '{arg}'")));
        };
        let value =
            it.next().ok_or_else(|| SweepError::Config(format!("--{key} needs a value")))?;
        opts.insert(key.to_string(), value);
    }

    let get = |key: &str| -> Result<&String, SweepError> {
        opts.get(key).ok_or_else(|| SweepError::Config(format!("missing --{key}")))
    };
    let parse_u64 = |key: &str| -> Result<u64, SweepError> {
        get(key)?
            .parse::<u64>()
            .map_err(|_| SweepError::Config(format!("--{key} is not an integer")))
    };

    if let Some(hang) = opts.get("fakecell-hang-us") {
        let us = hang
            .parse::<u64>()
            .map_err(|_| SweepError::Config("--fakecell-hang-us is not an integer".into()))?;
        std::thread::sleep(std::time::Duration::from_micros(us));
    }

    // Durable attempt counter: lives next to the checkpoints so the
    // orchestrator's per-cell directory carries it across retries.
    let ckpt_dir = PathBuf::from(get("checkpoint-dir")?);
    std::fs::create_dir_all(&ckpt_dir)
        .map_err(|e| SweepError::Config(format!("create {}: {e}", ckpt_dir.display())))?;
    let counter_path = ckpt_dir.join("fakecell-attempts");
    let prior: u64 = std::fs::read_to_string(&counter_path)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    simpadv_resilience::atomic_write(&counter_path, format!("{}", prior + 1).as_bytes())?;

    if let Some(fail_times) = opts.get("fakecell-fail-times") {
        let n = fail_times
            .parse::<u64>()
            .map_err(|_| SweepError::Config("--fakecell-fail-times is not an integer".into()))?;
        if prior < n {
            return Ok(3);
        }
    }

    let seed = parse_u64("seed")?;
    let samples = parse_u64("samples")?;
    let eps = get("eps")?
        .parse::<f32>()
        .map_err(|_| SweepError::Config("--eps is not a number".into()))?;
    // Deterministic pseudo-results from the argv alone (see module docs).
    let blend = ((seed % 997) as f32) / 997.0;
    let report = CellReport {
        schema_version: CELL_REPORT_VERSION,
        dataset: get("dataset")?.clone(),
        method_id: get("method")?.clone(),
        eps,
        epochs: parse_u64("epochs")?,
        samples,
        test_samples: parse_u64("test-samples")?,
        seed,
        final_loss: 2.0 - blend,
        columns: vec!["clean".to_string(), "fgsm".to_string()],
        accuracies: vec![0.5 + blend / 2.0, (0.9 - eps).max(0.0) * blend],
    };
    report.save(&PathBuf::from(get("report")?))?;
    Ok(0)
}
