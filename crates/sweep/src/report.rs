//! The per-cell result contract between orchestrator and child.
//!
//! A supervised child (the `simpadv` CLI's `train` verb with `--report`)
//! writes exactly one [`CellReport`] — sealed, CRC-checked, atomic — as
//! its last act before exiting 0. The orchestrator treats the report as
//! the *only* evidence a cell completed: an exit status of 0 without a
//! readable report is still a failed attempt (the child may have been
//! killed between its final checkpoint and the rename). Because training
//! is bitwise deterministic and checkpoints carry the accumulated report
//! state, a retried or resumed cell reproduces this file bit for bit.

use crate::error::SweepError;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Version stamp for the report payload; bump on layout change.
pub const CELL_REPORT_VERSION: u32 = 1;

/// Everything the campaign aggregate needs from one finished cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Layout version ([`CELL_REPORT_VERSION`]).
    pub schema_version: u32,
    /// Dataset the cell trained on.
    pub dataset: String,
    /// Trainer name.
    pub method_id: String,
    /// Perturbation budget used for training and evaluation.
    pub eps: f32,
    /// Epochs actually run.
    pub epochs: u64,
    /// Training samples.
    pub samples: u64,
    /// Held-out evaluation size.
    pub test_samples: u64,
    /// Training seed.
    pub seed: u64,
    /// Final training loss (logical: bitwise thread-invariant).
    pub final_loss: f32,
    /// Evaluation column names (clean + per-attack), from `EvalSuite`.
    pub columns: Vec<String>,
    /// Accuracies aligned with `columns`.
    pub accuracies: Vec<f32>,
}

impl CellReport {
    /// Writes the report sealed and atomically.
    ///
    /// # Errors
    ///
    /// Propagates persistence failures as [`SweepError::Persist`].
    pub fn save(&self, path: &Path) -> Result<(), SweepError> {
        simpadv_resilience::write_sealed_json(path, self)?;
        Ok(())
    }

    /// Loads and validates a report written by [`CellReport::save`].
    ///
    /// # Errors
    ///
    /// [`SweepError::Persist`] when the file is missing, damaged, or not
    /// a report; [`SweepError::Config`] on a schema-version mismatch.
    pub fn load(path: &Path) -> Result<Self, SweepError> {
        let report: CellReport = simpadv_resilience::read_sealed_json(path)?;
        if report.schema_version != CELL_REPORT_VERSION {
            return Err(SweepError::Config(format!(
                "cell report {} has schema version {} (expected {CELL_REPORT_VERSION})",
                path.display(),
                report.schema_version
            )));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("simpadv-sweep-report-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn report() -> CellReport {
        CellReport {
            schema_version: CELL_REPORT_VERSION,
            dataset: "mnist".into(),
            method_id: "proposed".into(),
            eps: 0.3,
            epochs: 2,
            samples: 32,
            test_samples: 40,
            seed: 2019,
            final_loss: 1.25,
            columns: vec!["clean".into(), "fgsm".into()],
            accuracies: vec![0.9, 0.7],
        }
    }

    #[test]
    fn round_trips_sealed() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("report.json");
        report().save(&path).unwrap();
        assert_eq!(CellReport::load(&path).unwrap(), report());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damage_is_detected_not_resumed_from() {
        let dir = tmpdir("damage");
        let path = dir.join("report.json");
        report().save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(CellReport::load(&path), Err(SweepError::Persist(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_is_a_config_error() {
        let dir = tmpdir("skew");
        let path = dir.join("report.json");
        let mut r = report();
        r.schema_version = 99;
        r.save(&path).unwrap();
        let err = CellReport::load(&path).unwrap_err();
        assert!(matches!(&err, SweepError::Config(m) if m.contains("99")), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
