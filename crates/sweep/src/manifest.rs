//! The generation-numbered, CRC-sealed campaign manifest.
//!
//! The manifest is the orchestrator's only durable state: grid config,
//! retry policy, and one [`CellState`] per cell. It is saved through a
//! [`simpadv_resilience::CheckpointStore`] after **every** cell
//! transition (about to spawn, finished, quarantined), so a SIGKILL at
//! any instant leaves either the previous or the next generation intact
//! — never a torn file. `sweep --resume` loads the newest generation
//! that validates and continues from exactly that transition.
//!
//! A cell found in [`CellStatus::Running`] on load is the crash
//! signature: the orchestrator died while a child was in flight. The
//! attempt was already charged when the cell went `Running`, so resume
//! treats it as a failed attempt and re-enters the retry path.

use crate::error::SweepError;
use crate::grid::{CellSpec, GridSpec};
use serde::{Deserialize, Serialize};
use simpadv_resilience::CheckpointStore;
use std::path::Path;

/// Version stamp for the manifest payload; bump on layout change.
pub const MANIFEST_VERSION: u32 = 1;

/// Manifest generations retained on disk (current + fallback history).
pub const MANIFEST_KEEP: usize = 4;

/// Retry/backoff policy persisted with the campaign so a resumed
/// orchestrator replays the identical schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// First-retry delay in microseconds.
    pub base_us: u64,
    /// Per-retry delay ceiling in microseconds.
    pub cap_us: u64,
    /// Attempts allowed per cell (first try + retries) before quarantine.
    pub max_attempts: u32,
    /// Campaign-wide retry budget shared by all cells.
    pub budget: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig { base_us: 50_000, cap_us: 5_000_000, max_attempts: 4, budget: 16 }
    }
}

impl RetryConfig {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.base_us == 0 {
            return Err("retry base must be positive".into());
        }
        if self.cap_us < self.base_us {
            return Err("retry cap must be >= base".into());
        }
        if self.max_attempts == 0 {
            return Err("max-attempts must be positive".into());
        }
        Ok(())
    }
}

/// Everything a campaign is parameterized by.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Layout version ([`MANIFEST_VERSION`]).
    pub schema_version: u32,
    /// The declarative grid.
    pub grid: GridSpec,
    /// Retry/backoff policy.
    pub retry: RetryConfig,
    /// Per-cell wall deadline in microseconds (child killed past it).
    pub cell_deadline_us: u64,
}

/// Lifecycle of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellStatus {
    /// Not yet attempted (or awaiting its next retry).
    Pending,
    /// A child is (or was, if the orchestrator died) in flight.
    Running,
    /// Completed with a valid report.
    Done,
    /// Retry budget or attempt cap exhausted; excluded from the
    /// aggregate's result rows but listed with its failure cause.
    Quarantined,
}

/// Durable per-cell progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellState {
    /// The grid point this cell realizes.
    pub spec: CellSpec,
    /// Current lifecycle stage.
    pub status: CellStatus,
    /// Attempts charged so far (incremented when a child is spawned).
    pub attempts: u32,
    /// Failure cause of the most recent unsuccessful attempt.
    pub last_error: Option<String>,
}

/// The whole durable campaign state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignManifest {
    /// Immutable campaign parameters.
    pub config: CampaignConfig,
    /// Per-cell progress, in expansion order.
    pub cells: Vec<CellState>,
    /// Retries drawn from the campaign-wide budget so far.
    pub retries_spent: u32,
}

impl CampaignManifest {
    /// Builds the generation-0 manifest for a validated config.
    ///
    /// # Errors
    ///
    /// [`SweepError::Config`] when the grid or retry policy is invalid.
    pub fn new(config: CampaignConfig) -> Result<Self, SweepError> {
        config.grid.validate().map_err(SweepError::Config)?;
        config.retry.validate().map_err(SweepError::Config)?;
        if config.cell_deadline_us == 0 {
            return Err(SweepError::Config("cell deadline must be positive".into()));
        }
        let cells = config
            .grid
            .expand()
            .into_iter()
            .map(|spec| CellState {
                spec,
                status: CellStatus::Pending,
                attempts: 0,
                last_error: None,
            })
            .collect();
        Ok(CampaignManifest { config, cells, retries_spent: 0 })
    }

    /// Counts cells in the given status.
    pub fn count(&self, status: CellStatus) -> usize {
        self.cells.iter().filter(|c| c.status == status).count()
    }

    /// True when every cell reached a terminal status.
    pub fn is_finished(&self) -> bool {
        self.cells.iter().all(|c| matches!(c.status, CellStatus::Done | CellStatus::Quarantined))
    }
}

/// The manifest's durable home: a checkpoint store under
/// `<campaign dir>/manifest`.
pub struct ManifestStore {
    store: CheckpointStore,
}

impl ManifestStore {
    /// Opens (creating if needed) the manifest store for a campaign dir.
    ///
    /// # Errors
    ///
    /// Propagates store-creation failures.
    pub fn open(campaign_dir: &Path) -> Result<Self, SweepError> {
        let store = CheckpointStore::open(campaign_dir.join("manifest"))?.with_keep(MANIFEST_KEEP);
        Ok(ManifestStore { store })
    }

    /// Seals and saves the manifest as the next generation.
    ///
    /// # Errors
    ///
    /// Propagates persistence failures.
    pub fn save(&self, manifest: &CampaignManifest) -> Result<u64, SweepError> {
        let json = serde_json::to_string(manifest)
            .map_err(|e| SweepError::Config(format!("manifest encode: {e}")))?;
        let generation = self.store.save(json.as_bytes())?;
        Ok(generation)
    }

    /// Loads the newest manifest generation that validates, skipping
    /// damaged ones; `None` when no valid generation exists.
    ///
    /// # Errors
    ///
    /// IO failures while scanning; a manifest that unseals but does not
    /// parse (or has the wrong schema version) is a config error, not a
    /// silently skipped generation.
    pub fn load_latest(&self) -> Result<Option<(u64, CampaignManifest)>, SweepError> {
        let Some((generation, payload)) = self.store.load_latest_valid()? else {
            return Ok(None);
        };
        let text = std::str::from_utf8(&payload)
            .map_err(|_| SweepError::Config("manifest payload is not UTF-8".into()))?;
        let manifest: CampaignManifest = serde_json::from_str(text)
            .map_err(|e| SweepError::Config(format!("manifest decode: {e}")))?;
        if manifest.config.schema_version != MANIFEST_VERSION {
            return Err(SweepError::Config(format!(
                "manifest schema version {} (expected {MANIFEST_VERSION})",
                manifest.config.schema_version
            )));
        }
        Ok(Some((generation, manifest)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("simpadv-sweep-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn config() -> CampaignConfig {
        CampaignConfig {
            schema_version: MANIFEST_VERSION,
            grid: GridSpec {
                dataset: "mnist".into(),
                epochs: 1,
                seed: 2019,
                test_samples: 20,
                methods: vec!["vanilla".into()],
                epsilons: vec![0.3],
                samples: vec![16, 32],
                threads: vec![1],
            },
            retry: RetryConfig::default(),
            cell_deadline_us: 60_000_000,
        }
    }

    #[test]
    fn new_manifest_has_all_cells_pending() {
        let m = CampaignManifest::new(config()).unwrap();
        assert_eq!(m.cells.len(), 2);
        assert_eq!(m.count(CellStatus::Pending), 2);
        assert!(!m.is_finished());
        assert_eq!(m.retries_spent, 0);
    }

    #[test]
    fn invalid_config_is_rejected_up_front() {
        let mut c = config();
        c.grid.methods.clear();
        assert!(matches!(CampaignManifest::new(c), Err(SweepError::Config(_))));
        let mut c = config();
        c.retry.cap_us = 1;
        assert!(matches!(CampaignManifest::new(c), Err(SweepError::Config(_))));
        let mut c = config();
        c.cell_deadline_us = 0;
        assert!(matches!(CampaignManifest::new(c), Err(SweepError::Config(_))));
    }

    #[test]
    fn store_round_trips_generations() {
        let dir = tmpdir("gens");
        let store = ManifestStore::open(&dir).unwrap();
        assert!(store.load_latest().unwrap().is_none());

        let mut m = CampaignManifest::new(config()).unwrap();
        assert_eq!(store.save(&m).unwrap(), 1);
        m.cells[0].status = CellStatus::Running;
        m.cells[0].attempts = 1;
        assert_eq!(store.save(&m).unwrap(), 2);

        let (generation, back) = store.load_latest().unwrap().unwrap();
        assert_eq!(generation, 2);
        assert_eq!(back, m);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_newest_generation_falls_back_to_previous() {
        let dir = tmpdir("fallback");
        let store = ManifestStore::open(&dir).unwrap();
        let mut m = CampaignManifest::new(config()).unwrap();
        store.save(&m).unwrap();
        let good = m.clone();
        m.cells[1].status = CellStatus::Done;
        store.save(&m).unwrap();

        // Corrupt generation 2 in place; the store must fall back to 1.
        let manifest_dir = dir.join("manifest");
        let newest =
            std::fs::read_dir(&manifest_dir).unwrap().map(|e| e.unwrap().path()).max().unwrap();
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&newest, &bytes).unwrap();

        let (generation, back) = store.load_latest().unwrap().unwrap();
        assert_eq!(generation, 1);
        assert_eq!(back, good);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn running_state_survives_the_round_trip() {
        // The resume path keys off Running-on-load; make sure the enum
        // variant serializes distinguishably.
        let dir = tmpdir("running");
        let store = ManifestStore::open(&dir).unwrap();
        let mut m = CampaignManifest::new(config()).unwrap();
        m.cells[0].status = CellStatus::Running;
        m.cells[0].attempts = 2;
        m.cells[0].last_error = Some("killed by signal".into());
        m.retries_spent = 1;
        store.save(&m).unwrap();
        let (_, back) = store.load_latest().unwrap().unwrap();
        assert_eq!(back.cells[0].status, CellStatus::Running);
        assert_eq!(back.cells[0].attempts, 2);
        assert_eq!(back.retries_spent, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
