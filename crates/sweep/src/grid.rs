//! Declarative campaign grids and their expansion into cells.
//!
//! A [`GridSpec`] is the Table-I-shaped cross product the paper's
//! comparative claim lives on: trainer x epsilon x training-set scale x
//! thread count. Expansion is deterministic — cells are emitted in
//! lexicographic axis order (method, then epsilon, then samples, then
//! threads) with a stable, human-readable id — so a resumed campaign
//! re-derives exactly the cell list the killed one was working through.

use serde::{Deserialize, Serialize};

/// Trainer names the child CLI accepts; kept in sync with
/// `simpadv-cli`'s `parse_method` (the CLI's test suite asserts the two
/// lists agree, so drift breaks the build, not a campaign).
pub const KNOWN_METHODS: &[&str] =
    &["vanilla", "fgsm", "atda", "proposed", "free", "bim10", "bim30"];

/// The declarative campaign grid: shared training shape + four axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Dataset id (`mnist` | `fashion`), shared by every cell.
    pub dataset: String,
    /// Epochs per cell.
    pub epochs: u64,
    /// Shared seed: cells differ by axis values, not by seed, exactly
    /// like the paper's tables.
    pub seed: u64,
    /// Held-out evaluation size for each cell's report.
    pub test_samples: u64,
    /// Trainer axis.
    pub methods: Vec<String>,
    /// Perturbation-budget axis.
    pub epsilons: Vec<f32>,
    /// Training-set-size axis.
    pub samples: Vec<u64>,
    /// Worker-thread axis (results are bitwise thread-invariant; the
    /// axis exists to prove that at campaign scale).
    pub threads: Vec<u64>,
}

/// One expanded grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Position in expansion order (0-based); also the backoff-seed index.
    pub index: u64,
    /// Stable human-readable id, e.g. `c003-proposed-e300m-s60-t1`.
    pub id: String,
    /// Trainer name (one of [`KNOWN_METHODS`]).
    pub method: String,
    /// Perturbation budget for training and evaluation.
    pub eps: f32,
    /// Training samples.
    pub samples: u64,
    /// Worker threads for the child.
    pub threads: u64,
}

impl GridSpec {
    /// Validates the grid: every axis non-empty, methods known, epsilons
    /// finite and non-negative, scalar fields positive.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.dataset != "mnist" && self.dataset != "fashion" {
            return Err(format!("unknown dataset '{}' (mnist|fashion)", self.dataset));
        }
        if self.epochs == 0 {
            return Err("epochs must be positive".into());
        }
        if self.test_samples == 0 {
            return Err("test-samples must be positive".into());
        }
        for (axis, empty) in [
            ("methods", self.methods.is_empty()),
            ("eps", self.epsilons.is_empty()),
            ("samples", self.samples.is_empty()),
            ("threads", self.threads.is_empty()),
        ] {
            if empty {
                return Err(format!("axis '{axis}' is empty"));
            }
        }
        for m in &self.methods {
            if !KNOWN_METHODS.contains(&m.as_str()) {
                return Err(format!("unknown method '{m}' (known: {})", KNOWN_METHODS.join(" ")));
            }
        }
        for e in &self.epsilons {
            if !e.is_finite() || *e < 0.0 {
                return Err(format!("epsilon {e} must be finite and >= 0"));
            }
        }
        if self.samples.contains(&0) || self.threads.contains(&0) {
            return Err("samples and threads axis values must be positive".into());
        }
        Ok(())
    }

    /// Expands the grid into cells, in deterministic axis order.
    pub fn expand(&self) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for method in &self.methods {
            for eps in &self.epsilons {
                for samples in &self.samples {
                    for threads in &self.threads {
                        let index = cells.len() as u64;
                        cells.push(CellSpec {
                            index,
                            id: format!(
                                "c{index:03}-{method}-e{}m-s{samples}-t{threads}",
                                eps_permille(*eps)
                            ),
                            method: method.clone(),
                            eps: *eps,
                            samples: *samples,
                            threads: *threads,
                        });
                    }
                }
            }
        }
        cells
    }
}

/// Epsilon in permille, for cell ids only (the spec keeps the exact f32).
fn eps_permille(eps: f32) -> u32 {
    (f64::from(eps) * 1000.0).round() as u32
}

/// Parses a comma-separated list of non-negative floats (an epsilon axis).
///
/// # Errors
///
/// Returns a message naming the unparsable element.
pub fn parse_f32_list(text: &str) -> Result<Vec<f32>, String> {
    text.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<f32>().map_err(|_| format!("cannot parse '{s}' as a number")))
        .collect()
}

/// Parses a comma-separated list of positive integers (samples/threads axes).
///
/// # Errors
///
/// Returns a message naming the unparsable element.
pub fn parse_u64_list(text: &str) -> Result<Vec<u64>, String> {
    text.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<u64>().map_err(|_| format!("cannot parse '{s}' as an integer")))
        .collect()
}

/// Parses a comma-separated method list against [`KNOWN_METHODS`].
///
/// # Errors
///
/// Returns a message naming the unknown method.
pub fn parse_method_list(text: &str) -> Result<Vec<String>, String> {
    let methods: Vec<String> =
        text.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_string).collect();
    for m in &methods {
        if !KNOWN_METHODS.contains(&m.as_str()) {
            return Err(format!("unknown method '{m}' (known: {})", KNOWN_METHODS.join(" ")));
        }
    }
    Ok(methods)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridSpec {
        GridSpec {
            dataset: "mnist".into(),
            epochs: 2,
            seed: 2019,
            test_samples: 40,
            methods: vec!["vanilla".into(), "proposed".into()],
            epsilons: vec![0.1, 0.3],
            samples: vec![32],
            threads: vec![1, 2],
        }
    }

    #[test]
    fn expansion_is_deterministic_with_stable_ids() {
        let cells = grid().expand();
        // 2 methods x 2 epsilons x 1 sample count x 2 thread counts
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].id, "c000-vanilla-e100m-s32-t1");
        assert_eq!(cells[7].id, "c007-proposed-e300m-s32-t2");
        assert_eq!(cells, grid().expand(), "expansion is a pure function of the spec");
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i as u64);
        }
    }

    #[test]
    fn validation_names_the_offending_field() {
        assert!(grid().validate().is_ok());
        let mut g = grid();
        g.dataset = "imagenet".into();
        assert!(g.validate().unwrap_err().contains("dataset"));
        let mut g = grid();
        g.methods = vec!["magic".into()];
        assert!(g.validate().unwrap_err().contains("magic"));
        let mut g = grid();
        g.epsilons = vec![-0.5];
        assert!(g.validate().unwrap_err().contains("-0.5"));
        let mut g = grid();
        g.epsilons.clear();
        assert!(g.validate().unwrap_err().contains("eps"));
        let mut g = grid();
        g.threads = vec![0];
        assert!(g.validate().unwrap_err().contains("positive"));
    }

    #[test]
    fn list_parsers_trim_and_reject() {
        assert_eq!(parse_f32_list("0.1, 0.3").unwrap(), vec![0.1, 0.3]);
        assert!(parse_f32_list("0.1,zebra").is_err());
        assert_eq!(parse_u64_list("32,64").unwrap(), vec![32, 64]);
        assert!(parse_u64_list("32,-1").is_err());
        assert_eq!(parse_method_list("vanilla,proposed").unwrap().len(), 2);
        assert!(parse_method_list("vanilla,magic").is_err());
    }

    #[test]
    fn grid_round_trips_through_json() {
        let g = grid();
        let text = serde_json::to_string(&g).unwrap();
        let back: GridSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, g);
    }
}
