//! The campaign chaos matrix: deliberate interruption of cells.
//!
//! Chaos here targets *children*: SIGKILL a cell mid-flight, or inject
//! `SIMPADV_FAILPOINTS` into the child so its own durable-IO sites
//! fault. Chaos against the *orchestrator* (SIGKILL between manifest
//! transitions) needs no support code — the CI `sweep-chaos` job simply
//! kills the process and reruns with `--resume`; the manifest protocol
//! is what makes that survivable.
//!
//! Chaos state is intentionally **not** persisted in the manifest: a
//! resumed campaign must converge to the uninterrupted result, so the
//! kill counter lives and dies with the orchestrator process that was
//! asked to inject failures.

/// What to do to cells, and how many times.
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// SIGKILL each targeted cell this long after spawn (µs).
    pub kill_cell_after_us: Option<u64>,
    /// How many attempts (across the whole campaign) to kill before
    /// chaos goes quiet and lets cells complete.
    pub kill_cell_times: u32,
    /// `SIMPADV_FAILPOINTS` spec injected into child environments.
    pub child_failpoints: Option<String>,
}

impl ChaosConfig {
    /// True when this config injects no failures at all.
    pub fn is_quiet(&self) -> bool {
        (self.kill_cell_after_us.is_none() || self.kill_cell_times == 0)
            && self.child_failpoints.is_none()
    }
}

/// In-memory chaos budget tracker for one orchestrator process.
#[derive(Debug)]
pub struct ChaosState {
    config: ChaosConfig,
    kills_fired: u32,
}

impl ChaosState {
    /// Arms the tracker with a config.
    pub fn new(config: ChaosConfig) -> Self {
        ChaosState { config, kills_fired: 0 }
    }

    /// The kill delay to apply to the next attempt, if chaos still has
    /// budget; calling this charges the budget.
    pub fn next_kill_after_us(&mut self) -> Option<u64> {
        let after = self.config.kill_cell_after_us?;
        if self.kills_fired >= self.config.kill_cell_times {
            return None;
        }
        self.kills_fired += 1;
        Some(after)
    }

    /// Failpoints to inject into the next child, if any.
    pub fn child_failpoints(&self) -> Option<&str> {
        self.config.child_failpoints.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_budget_is_charged_per_query() {
        let mut state = ChaosState::new(ChaosConfig {
            kill_cell_after_us: Some(1_000),
            kill_cell_times: 2,
            child_failpoints: None,
        });
        assert_eq!(state.next_kill_after_us(), Some(1_000));
        assert_eq!(state.next_kill_after_us(), Some(1_000));
        assert_eq!(state.next_kill_after_us(), None, "budget exhausted");
    }

    #[test]
    fn quiet_configs_never_fire() {
        assert!(ChaosConfig::default().is_quiet());
        let mut state = ChaosState::new(ChaosConfig::default());
        assert_eq!(state.next_kill_after_us(), None);
        assert_eq!(state.child_failpoints(), None);

        let zero_times =
            ChaosConfig { kill_cell_after_us: Some(5), kill_cell_times: 0, child_failpoints: None };
        assert!(zero_times.is_quiet());
        assert_eq!(ChaosState::new(zero_times).next_kill_after_us(), None);
    }

    #[test]
    fn failpoint_injection_is_not_quiet() {
        let cfg = ChaosConfig {
            kill_cell_after_us: None,
            kill_cell_times: 0,
            child_failpoints: Some("pre-rename=1".into()),
        };
        assert!(!cfg.is_quiet());
        assert_eq!(ChaosState::new(cfg).child_failpoints(), Some("pre-rename=1"));
    }
}
