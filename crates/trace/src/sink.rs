//! Pluggable event sinks: JSONL, pretty, in-memory, null.
//!
//! Sinks are best-effort by design: telemetry must never take down a
//! training run, so I/O errors are swallowed (the write is skipped and
//! the sink keeps accepting events). The JSONL sink writes through a
//! [`std::io::LineWriter`], so every event line reaches the file even if
//! the process exits without an explicit flush.

use crate::event::{Event, EventKind};
use std::io::{LineWriter, Write};
use std::sync::{Arc, Mutex, PoisonError};

/// Output format selected by `--trace-format` / `SIMPADV_TRACE_FORMAT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// One JSON object per line — the machine-readable default.
    #[default]
    Jsonl,
    /// Indented human-readable lines.
    Pretty,
}

impl TraceFormat {
    /// Parses a format name (`jsonl` or `pretty`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "jsonl" => Some(TraceFormat::Jsonl),
            "pretty" => Some(TraceFormat::Pretty),
            _ => None,
        }
    }
}

/// Where emitted events go.
pub trait Sink: Send {
    /// Accepts one event. Must not panic; I/O failures are swallowed.
    fn record(&mut self, event: &Event);
    /// Pushes buffered output to its destination.
    fn flush(&mut self);
}

/// Discards everything (the default when tracing is off).
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _event: &Event) {}
    fn flush(&mut self) {}
}

/// Writes one JSON object per line.
pub struct JsonlSink<W: Write + Send> {
    writer: LineWriter<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer: LineWriter::new(writer) }
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        let mut line = event.to_json_line();
        line.push('\n');
        let _ = self.writer.write_all(line.as_bytes());
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Writes indented human-readable lines, one per event.
pub struct PrettySink<W: Write + Send> {
    writer: LineWriter<W>,
    depth: usize,
}

impl<W: Write + Send> PrettySink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        PrettySink { writer: LineWriter::new(writer), depth: 0 }
    }
}

fn render_pairs(pairs: &[(String, crate::FieldValue)]) -> String {
    pairs.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(" ")
}

impl<W: Write + Send> Sink for PrettySink<W> {
    fn record(&mut self, event: &Event) {
        if event.kind == EventKind::SpanClose {
            self.depth = self.depth.saturating_sub(1);
        }
        let indent = "  ".repeat(self.depth);
        let marker = match event.kind {
            EventKind::SpanOpen => ">",
            EventKind::SpanClose => "<",
            EventKind::Counter => "+",
            EventKind::Gauge => "=",
            EventKind::Histogram => "#",
        };
        let mut line = format!("{indent}{marker} {} {}", event.path, render_pairs(&event.fields));
        let meta = render_pairs(&event.meta);
        if !meta.is_empty() {
            line.push_str(&format!(" [{meta}]"));
        }
        line.push('\n');
        let _ = self.writer.write_all(line.as_bytes());
        if event.kind == EventKind::SpanOpen {
            self.depth += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Collects events in memory; the test sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

/// A handle onto a [`MemorySink`]'s event buffer, valid after the sink
/// itself has been installed into (and moved behind) the tracer.
#[derive(Debug, Clone)]
pub struct MemoryHandle {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// Creates an empty sink and a handle observing it.
    pub fn new() -> (Self, MemoryHandle) {
        let events = Arc::new(Mutex::new(Vec::new()));
        (MemorySink { events: Arc::clone(&events) }, MemoryHandle { events })
    }
}

impl MemoryHandle {
    /// Removes and returns everything recorded so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// A copy of everything recorded so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).push(event.clone());
    }

    fn flush(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FieldValue;

    fn ev(seq: u64, kind: EventKind, path: &str) -> Event {
        Event {
            seq,
            kind,
            path: path.to_string(),
            fields: vec![("k".to_string(), FieldValue::U64(seq))],
            meta: Vec::new(),
            ctx: None,
        }
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut buf);
            sink.record(&ev(0, EventKind::SpanOpen, "a"));
            sink.record(&ev(1, EventKind::SpanClose, "a"));
            sink.flush();
        }
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let back: Event = serde_json::from_str(line).expect("valid event");
            assert_eq!(back.to_json_line(), line);
        }
    }

    #[test]
    fn pretty_sink_indents_by_span_depth() {
        let mut buf = Vec::new();
        {
            let mut sink = PrettySink::new(&mut buf);
            sink.record(&ev(0, EventKind::SpanOpen, "train"));
            sink.record(&ev(1, EventKind::Gauge, "train/loss"));
            sink.record(&ev(2, EventKind::SpanClose, "train"));
            sink.flush();
        }
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("> train"));
        assert!(lines[1].starts_with("  = train/loss"));
        assert!(lines[2].starts_with("< train"));
    }

    #[test]
    fn memory_sink_take_and_snapshot() {
        let (mut sink, handle) = MemorySink::new();
        sink.record(&ev(0, EventKind::Counter, "c"));
        assert_eq!(handle.snapshot().len(), 1);
        assert_eq!(handle.take().len(), 1);
        assert!(handle.take().is_empty());
    }

    #[test]
    fn trace_format_parses() {
        assert_eq!(TraceFormat::parse("jsonl"), Some(TraceFormat::Jsonl));
        assert_eq!(TraceFormat::parse("pretty"), Some(TraceFormat::Pretty));
        assert_eq!(TraceFormat::parse("xml"), None);
        assert_eq!(TraceFormat::default(), TraceFormat::Jsonl);
    }
}
