//! `simpadv-trace`: structured tracing, metrics, and profiling hooks for
//! the adversarial-training stack.
//!
//! The crate provides one process-wide tracer with three event sources —
//! scoped [`span`]s, [`counter`]/[`gauge`] point events, and
//! [`observe`]d histograms — flowing into a pluggable [`Sink`] (JSONL,
//! pretty, in-memory). Spans carry two clocks: monotonic wall time
//! (reported as non-logical `meta`) and the deterministic logical clock
//! of [`clock`] (forward/backward passes, a flops proxy, attack steps —
//! reported as logical `fields`).
//!
//! # Determinism contract
//!
//! In deterministic mode the *logical* portion of a trace — the span
//! tree, event order, counter values, gauge values, histogram buckets —
//! is bitwise identical across `--threads` settings. Two mechanisms
//! enforce this:
//!
//! 1. worker threads (and everything executed inside a runtime parallel
//!    region, including its serial fallback) are **suppressed**: they
//!    tick the logical clock but never emit events, so the emitted
//!    stream has the same shape whether a region ran on one thread or
//!    eight;
//! 2. thread-count-dependent quantities (pool regions/tasks, busy time,
//!    spawned threads, wall time) are confined to event `meta`, which
//!    [`Event::without_meta`] strips before any determinism comparison.
//!
//! # Activation
//!
//! Tracing is off (and near-free: one relaxed atomic load) until a sink
//! is installed — programmatically via [`install_file`] /
//! [`install_memory`], or at first use through the [`TRACE_ENV`] /
//! [`TRACE_FORMAT_ENV`] environment variables.

pub mod clock;
pub mod context;
pub mod event;
pub mod histogram;
pub mod sink;
pub mod summary;

pub use clock::{snapshot, ClockSnapshot};
pub use context::{TraceContext, TRACEPARENT_ENV};
pub use event::{Event, EventKind, FieldValue};
pub use histogram::{Histogram, DEFAULT_BOUNDS};
pub use sink::{JsonlSink, MemoryHandle, MemorySink, NullSink, PrettySink, Sink, TraceFormat};
pub use summary::{SpanAggregate, Summary, SummaryError};

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Environment variable naming the trace output file. When set (and no
/// sink was installed programmatically) the tracer opens it on first use.
pub const TRACE_ENV: &str = "SIMPADV_TRACE";

/// Environment variable selecting the trace format (`jsonl` or
/// `pretty`); defaults to JSONL.
pub const TRACE_FORMAT_ENV: &str = "SIMPADV_TRACE_FORMAT";

/// The process's place in a campaign-wide trace, when it has one.
struct TraceState {
    /// Trace id shared by every process of the campaign.
    trace_id: u128,
    /// Span id (possibly in another process) this process's top-level
    /// spans hang under; `None` for the campaign root process.
    remote_parent: Option<u64>,
}

struct State {
    sink: Box<dyn Sink>,
    seq: u64,
    stack: Vec<String>,
    /// Span ids parallel to `stack`: the id assigned to each open span,
    /// or 0 for spans opened without a campaign context.
    span_ids: Vec<u64>,
    trace: Option<TraceState>,
    histograms: BTreeMap<String, Histogram>,
}

/// Fast-path switch: emission helpers bail on one relaxed load when no
/// sink is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

static STATE: OnceLock<Mutex<State>> = OnceLock::new();

/// Lazily initializes the tracer, honoring [`TRACE_ENV`] on first touch.
fn state() -> &'static Mutex<State> {
    STATE.get_or_init(|| {
        let mut boxed: Box<dyn Sink> = Box::new(NullSink);
        if let Ok(path) = std::env::var(TRACE_ENV) {
            if !path.is_empty() {
                let format = std::env::var(TRACE_FORMAT_ENV)
                    .ok()
                    .and_then(|s| TraceFormat::parse(&s))
                    .unwrap_or_default();
                // Telemetry is best-effort: an unopenable path silently
                // leaves tracing off rather than failing the run.
                if let Ok(file) = std::fs::File::create(&path) {
                    boxed = match format {
                        TraceFormat::Jsonl => Box::new(JsonlSink::new(file)),
                        TraceFormat::Pretty => Box::new(PrettySink::new(file)),
                    };
                    ENABLED.store(true, Ordering::SeqCst);
                }
            }
        }
        Mutex::new(State {
            sink: boxed,
            seq: 0,
            stack: Vec::new(),
            span_ids: Vec::new(),
            trace: trace_state_from_env(),
            histograms: BTreeMap::new(),
        })
    })
}

fn lock_state() -> std::sync::MutexGuard<'static, State> {
    state().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Adopts [`TRACEPARENT_ENV`] (set by a spawning orchestrator) as this
/// process's campaign membership: its span id is the remote parent for
/// every top-level span emitted here.
fn trace_state_from_env() -> Option<TraceState> {
    TraceContext::from_env()
        .map(|ctx| TraceState { trace_id: ctx.trace_id, remote_parent: Some(ctx.span_id) })
}

/// Makes this process the root of a fresh campaign trace: top-level
/// spans carry `trace_id` with no parent link. The sweep orchestrator
/// calls this with a trace id derived from the campaign seed.
pub fn set_trace_root(trace_id: u128) {
    lock_state().trace = Some(TraceState { trace_id, remote_parent: None });
}

/// Joins an existing campaign trace programmatically (the env-var
/// equivalent happens automatically at first use / sink install).
pub fn adopt_context(ctx: TraceContext) {
    lock_state().trace =
        Some(TraceState { trace_id: ctx.trace_id, remote_parent: Some(ctx.span_id) });
}

/// Drops any campaign membership; subsequent spans carry no `ctx`.
pub fn clear_trace_context() {
    lock_state().trace = None;
}

/// The context a propagating call should hand to the other side right
/// now: the innermost open span's identity. `None` when tracing is off,
/// no campaign context is set, or no span is open.
pub fn current_context() -> Option<TraceContext> {
    let st = lock_state();
    let trace = st.trace.as_ref()?;
    let span_id = st.span_ids.last().copied().filter(|&id| id != 0)?;
    let parent = st.span_ids[..st.span_ids.len() - 1]
        .iter()
        .rev()
        .copied()
        .find(|&id| id != 0)
        .or(trace.remote_parent);
    Some(TraceContext { trace_id: trace.trace_id, span_id, parent })
}

/// Computes the identity of a span about to open at the current `seq`.
/// `remote` (a propagated context, e.g. from a request header) overrides
/// the local parent chain.
fn next_span_context(st: &State, remote: Option<&TraceContext>) -> Option<TraceContext> {
    if let Some(r) = remote {
        let span_id = context::derive_child(r.span_id, st.seq);
        return Some(TraceContext { trace_id: r.trace_id, span_id, parent: Some(r.span_id) });
    }
    let trace = st.trace.as_ref()?;
    let parent = st.span_ids.iter().rev().copied().find(|&id| id != 0).or(trace.remote_parent);
    let base = parent.unwrap_or_else(|| context::root_parent(trace.trace_id));
    Some(TraceContext {
        trace_id: trace.trace_id,
        span_id: context::derive_child(base, st.seq),
        parent,
    })
}

/// Whether a sink is installed and events are being recorded.
pub fn enabled() -> bool {
    state();
    ENABLED.load(Ordering::Relaxed)
}

thread_local! {
    /// Per-thread emission suppression (see the crate docs).
    static SUPPRESSED: Cell<bool> = const { Cell::new(false) };
}

/// Whether this thread's events are currently suppressed.
pub fn events_suppressed() -> bool {
    SUPPRESSED.with(Cell::get)
}

/// Restores the previous suppression state on drop.
#[must_use = "suppression ends when the guard drops"]
pub struct SuppressGuard {
    prev: bool,
}

/// Suppresses event emission on this thread until the returned guard
/// drops. The logical clock keeps ticking; only emission stops.
///
/// The runtime wraps every parallel region (including its serial
/// fallback and the caller-runs-a-share path) in this guard so the
/// emitted event stream is independent of the thread count.
pub fn suppress_events() -> SuppressGuard {
    SuppressGuard { prev: SUPPRESSED.with(|c| c.replace(true)) }
}

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESSED.with(|c| c.set(self.prev));
    }
}

/// Permanently suppresses emission on the calling thread. Spawned pool
/// workers call this once at startup; the thread never emits again.
pub fn suppress_events_on_this_thread() {
    SUPPRESSED.with(|c| c.set(true));
}

fn full_path(stack: &[String], leaf: &str) -> String {
    if stack.is_empty() {
        leaf.to_string()
    } else {
        format!("{}/{}", stack.join("/"), leaf)
    }
}

/// Appends one event to the sink, assigning the next sequence number.
/// `ctx` is only ever set for `SpanOpen` events.
fn record(
    st: &mut State,
    kind: EventKind,
    path: String,
    fields: Vec<(String, FieldValue)>,
    meta: Vec<(String, FieldValue)>,
    ctx: Option<TraceContext>,
) {
    let ev = Event { seq: st.seq, kind, path, fields, meta, ctx };
    st.seq += 1;
    st.sink.record(&ev);
}

/// Drains accumulated histograms into `Histogram` events (path order).
fn flush_histograms(st: &mut State) {
    let hists = std::mem::take(&mut st.histograms);
    for (path, h) in hists {
        if h.count() > 0 {
            record(st, EventKind::Histogram, path, h.to_fields(), Vec::new(), None);
        }
    }
}

/// The timing a finished span measured: wall seconds plus the logical
/// forward/backward work executed while it was open.
///
/// Always populated — even with tracing disabled — so callers (e.g.
/// `TrainReport`) can source per-epoch timing from the span clock
/// unconditionally.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanTiming {
    /// Monotonic wall-clock duration in seconds (non-logical).
    pub seconds: f64,
    /// Model forward passes executed during the span (logical).
    pub forward: u64,
    /// Model backward passes executed during the span (logical).
    pub backward: u64,
}

impl SpanTiming {
    /// Assembles a timing from parts.
    pub fn new(seconds: f64, forward: u64, backward: u64) -> Self {
        SpanTiming { seconds, forward, backward }
    }

    /// Total logical gradient work: forward plus backward passes.
    pub fn work(&self) -> u64 {
        self.forward + self.backward
    }
}

/// An open span. Closes (emitting a `SpanClose`) on drop, or explicitly
/// via [`SpanGuard::finish`] to recover the measured [`SpanTiming`].
pub struct SpanGuard {
    leaf: String,
    start: clock::WallTimer,
    open: ClockSnapshot,
    registered: bool,
    closed: bool,
    ctx: Option<TraceContext>,
}

/// Opens a span named `name` with the given logical fields.
///
/// Emits a `SpanOpen` event and pushes the name onto the tracer's path
/// stack (so nested events compose paths like `train/epoch/loss`) —
/// unless tracing is disabled or this thread is suppressed, in which
/// case only the timing measurement happens. Prefer the [`span!`] macro
/// for ergonomic field lists.
pub fn span(name: &str, fields: Vec<(String, FieldValue)>) -> SpanGuard {
    span_with_remote(name, fields, None)
}

/// [`span`] with an explicit remote parent — the propagation entry
/// point. The serve server opens each request span with the context its
/// client sent in `X-Simpadv-Traceparent`, so the request hangs under
/// the client's span in the assembled campaign tree regardless of which
/// process (or dispatch thread) executed it.
pub fn span_with_remote(
    name: &str,
    fields: Vec<(String, FieldValue)>,
    remote: Option<TraceContext>,
) -> SpanGuard {
    let registered = enabled() && !events_suppressed();
    let mut ctx = None;
    if registered {
        let mut st = lock_state();
        let path = full_path(&st.stack, name);
        ctx = next_span_context(&st, remote.as_ref());
        record(&mut st, EventKind::SpanOpen, path, fields, Vec::new(), ctx);
        st.stack.push(name.to_string());
        st.span_ids.push(ctx.map_or(0, |c| c.span_id));
    }
    SpanGuard {
        leaf: name.to_string(),
        start: clock::WallTimer::start(),
        open: clock::snapshot(),
        registered,
        closed: false,
        ctx,
    }
}

impl SpanGuard {
    /// Closes the span now and returns what it measured.
    pub fn finish(mut self) -> SpanTiming {
        self.close_now()
    }

    /// This span's campaign identity, if the tracer has one. The sweep
    /// orchestrator encodes an attempt span's context into the child's
    /// [`TRACEPARENT_ENV`] so the cell's trace stitches under it.
    pub fn context(&self) -> Option<TraceContext> {
        self.ctx
    }

    fn close_now(&mut self) -> SpanTiming {
        if self.closed {
            return SpanTiming::default();
        }
        self.closed = true;
        let delta = clock::snapshot().delta_since(&self.open);
        let seconds = self.start.elapsed_seconds();
        let timing = SpanTiming::new(seconds, delta.forward, delta.backward);
        if self.registered && enabled() {
            let mut st = lock_state();
            if st.stack.last().map(String::as_str) == Some(self.leaf.as_str()) {
                st.stack.pop();
                st.span_ids.pop();
            }
            let path = full_path(&st.stack, &self.leaf);
            let fields = vec![
                ("forward".to_string(), FieldValue::U64(delta.forward)),
                ("backward".to_string(), FieldValue::U64(delta.backward)),
                ("flops".to_string(), FieldValue::U64(delta.flops)),
                ("attack_steps".to_string(), FieldValue::U64(delta.attack_steps)),
            ];
            let meta = vec![
                ("wall_us".to_string(), FieldValue::U64(self.start.elapsed_us())),
                ("busy_us".to_string(), FieldValue::U64(delta.busy_ns / 1_000)),
                ("pool_regions".to_string(), FieldValue::U64(delta.pool_regions)),
                ("pool_tasks".to_string(), FieldValue::U64(delta.pool_tasks)),
                ("spawned_threads".to_string(), FieldValue::U64(delta.spawned_threads)),
            ];
            record(&mut st, EventKind::SpanClose, path, fields, meta, None);
        }
        timing
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let _ = self.close_now();
    }
}

/// Opens a [`span`] with an ergonomic `key = value` field list:
/// `span!("epoch", trainer = "proposed", index = epoch)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name, Vec::new())
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::span(
            $name,
            vec![$((String::from(stringify!($k)), $crate::FieldValue::from($v))),+],
        )
    };
}

/// Emits a counter event at `path` (composed under the current span).
pub fn counter(path: &str, value: u64) {
    counter_with(path, value, &[]);
}

/// [`counter`] with extra fields after the leading `value`.
pub fn counter_with(path: &str, value: u64, extra: &[(&str, FieldValue)]) {
    if !enabled() || events_suppressed() {
        return;
    }
    let mut st = lock_state();
    let full = full_path(&st.stack, path);
    let mut fields = vec![("value".to_string(), FieldValue::U64(value))];
    fields.extend(extra.iter().map(|(k, v)| ((*k).to_string(), v.clone())));
    record(&mut st, EventKind::Counter, full, fields, Vec::new(), None);
}

/// Emits a gauge event at `path` (composed under the current span).
pub fn gauge(path: &str, value: f64) {
    gauge_with(path, value, &[]);
}

/// [`gauge`] with extra fields after the leading `value`.
pub fn gauge_with(path: &str, value: f64, extra: &[(&str, FieldValue)]) {
    if !enabled() || events_suppressed() {
        return;
    }
    let mut st = lock_state();
    let full = full_path(&st.stack, path);
    let mut fields = vec![("value".to_string(), FieldValue::F64(value))];
    fields.extend(extra.iter().map(|(k, v)| ((*k).to_string(), v.clone())));
    record(&mut st, EventKind::Gauge, full, fields, Vec::new(), None);
}

/// Adds one observation to the histogram at `path` (composed under the
/// current span, default bounds). Histograms accumulate in memory and
/// are emitted as single events on [`flush`] / [`uninstall`] /
/// [`install_sink`].
pub fn observe(path: &str, value: f64) {
    if !enabled() || events_suppressed() {
        return;
    }
    let mut st = lock_state();
    let full = full_path(&st.stack, path);
    st.histograms.entry(full).or_insert_with(Histogram::with_default_bounds).observe(value);
}

/// Installs a sink and enables tracing. Any previous sink is flushed
/// (accumulated histograms included) and replaced; the sequence counter,
/// span stack, and histogram store reset, so two runs in one process
/// produce comparable traces.
pub fn install_sink(new_sink: Box<dyn Sink>) {
    let mut st = lock_state();
    flush_histograms(&mut st);
    st.sink.flush();
    st.sink = new_sink;
    st.seq = 0;
    st.stack.clear();
    st.span_ids.clear();
    st.histograms.clear();
    // Fresh-run semantics extend to campaign membership: re-adopt
    // whatever the environment says (a spawning orchestrator sets it),
    // dropping any context a previous run set programmatically.
    st.trace = trace_state_from_env();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Installs a file-backed sink in the given format.
///
/// # Errors
///
/// Returns the I/O error if the file cannot be created.
pub fn install_file(path: &std::path::Path, format: TraceFormat) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let boxed: Box<dyn Sink> = match format {
        TraceFormat::Jsonl => Box::new(JsonlSink::new(file)),
        TraceFormat::Pretty => Box::new(PrettySink::new(file)),
    };
    install_sink(boxed);
    Ok(())
}

/// Installs an in-memory sink (the test harness) and returns the handle
/// observing it.
pub fn install_memory() -> MemoryHandle {
    let (memory, handle) = MemorySink::new();
    install_sink(Box::new(memory));
    handle
}

/// Flushes accumulated histograms and buffered sink output without
/// disabling tracing.
pub fn flush() {
    let mut st = lock_state();
    flush_histograms(&mut st);
    st.sink.flush();
}

/// Flushes and removes the current sink, disabling tracing.
pub fn uninstall() {
    let mut st = lock_state();
    flush_histograms(&mut st);
    st.sink.flush();
    st.sink = Box::new(NullSink);
    st.stack.clear();
    st.span_ids.clear();
    st.trace = None;
    st.histograms.clear();
    ENABLED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global, so everything that installs a sink
    // lives in this single test fn (the test harness runs fns on
    // concurrent threads). Clock deltas are asserted as lower bounds
    // because sibling unit tests tick the same global clock.
    #[test]
    fn global_tracer_end_to_end() {
        let handle = install_memory();
        assert!(enabled());
        {
            let outer = span!("train", trainer = "proposed");
            clock::tick_forward(2);
            clock::tick_backward(1);
            {
                let inner = span!("epoch");
                gauge("loss", 0.5);
                counter("resets", 1);
                observe("drift", 0.25);
                let t = inner.finish();
                assert!(t.forward <= t.work());
            }
            let timing = outer.finish();
            assert!(timing.forward >= 2);
            assert!(timing.backward >= 1);
            assert!(timing.work() >= 3);
            assert!(timing.seconds >= 0.0);
        }
        uninstall();
        assert!(!enabled());
        // Emission after uninstall goes nowhere.
        gauge("ignored", 1.0);
        let events = handle.take();
        let kinds_paths: Vec<(EventKind, &str)> =
            events.iter().map(|e| (e.kind, e.path.as_str())).collect();
        assert_eq!(
            kinds_paths,
            vec![
                (EventKind::SpanOpen, "train"),
                (EventKind::SpanOpen, "train/epoch"),
                (EventKind::Gauge, "train/epoch/loss"),
                (EventKind::Counter, "train/epoch/resets"),
                (EventKind::SpanClose, "train/epoch"),
                (EventKind::SpanClose, "train"),
                (EventKind::Histogram, "train/epoch/drift"),
            ]
        );
        // Sequence numbers are dense and start at zero after install.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        // Span opens carry the macro's fields.
        assert_eq!(events[0].fields[0].0, "trainer");
        // Span closes put logical counters in fields, timing in meta.
        let close = &events[5];
        let field_keys: Vec<&str> = close.fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(field_keys, vec!["forward", "backward", "flops", "attack_steps"]);
        let meta_keys: Vec<&str> = close.meta.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            meta_keys,
            vec!["wall_us", "busy_us", "pool_regions", "pool_tasks", "spawned_threads"]
        );
        assert!(close.without_meta().meta.is_empty());
        // Without a campaign context, no event carries a ctx.
        assert!(events.iter().all(|e| e.ctx.is_none()));

        // --- campaign context chain ---------------------------------
        let chain_ids = |events: &[Event]| -> Vec<Option<TraceContext>> {
            events.iter().filter(|e| e.kind == EventKind::SpanOpen).map(|e| e.ctx).collect()
        };
        let handle = install_memory();
        set_trace_root(7);
        {
            let outer = span!("sweep");
            let octx = outer.context().expect("root span has a context");
            assert_eq!(octx.trace_id, 7);
            assert_eq!(octx.parent, None);
            {
                let inner = span!("sweep/cell");
                let ictx = inner.context().expect("nested span has a context");
                assert_eq!(ictx.parent, Some(octx.span_id));
                assert_ne!(ictx.span_id, octx.span_id);
                // current_context names the innermost open span.
                let cur = current_context().expect("a span is open");
                assert_eq!(cur.span_id, ictx.span_id);
                assert_eq!(cur.parent, Some(octx.span_id));
                // A remote override reparents across the propagation
                // boundary instead of following the local stack.
                let remote = TraceContext { trace_id: 7, span_id: 0x99, parent: None };
                let r = span_with_remote("serve/request", Vec::new(), Some(remote));
                assert_eq!(r.context().unwrap().parent, Some(0x99));
            }
        }
        let first = handle.take();
        assert!(first.iter().filter(|e| e.kind == EventKind::SpanOpen).all(|e| e.ctx.is_some()));
        assert!(first.iter().filter(|e| e.kind == EventKind::SpanClose).all(|e| e.ctx.is_none()));
        // The id chain is a pure function of (trace id, event sequence):
        // replaying the same spans regrows the identical chain.
        let handle = install_memory();
        set_trace_root(7);
        {
            let _outer = span!("sweep");
            let _inner = span!("sweep/cell");
            let remote = TraceContext { trace_id: 7, span_id: 0x99, parent: None };
            let _r = span_with_remote("serve/request", Vec::new(), Some(remote));
        }
        let second = handle.take();
        assert_eq!(chain_ids(&first), chain_ids(&second));
        // clear_trace_context drops campaign membership mid-process.
        let handle = install_memory();
        set_trace_root(7);
        clear_trace_context();
        {
            let s = span!("plain");
            assert_eq!(s.context(), None);
            assert_eq!(current_context(), None);
        }
        assert!(handle.take().iter().all(|e| e.ctx.is_none()));
        // adopt_context hangs top-level spans under a remote parent.
        let handle = install_memory();
        adopt_context(TraceContext { trace_id: 11, span_id: 0xAB, parent: None });
        {
            let s = span!("train");
            let ctx = s.context().unwrap();
            assert_eq!(ctx.trace_id, 11);
            assert_eq!(ctx.parent, Some(0xAB));
        }
        let adopted = handle.take();
        assert_eq!(adopted[0].ctx.unwrap().parent, Some(0xAB));
        uninstall();
    }

    #[test]
    fn suppression_is_thread_local_and_nests() {
        assert!(!events_suppressed());
        {
            let _outer = suppress_events();
            assert!(events_suppressed());
            {
                let _inner = suppress_events();
                assert!(events_suppressed());
            }
            // Inner guard restores the (still suppressed) outer state.
            assert!(events_suppressed());
        }
        assert!(!events_suppressed());
        // A suppressed span still measures timing.
        let _guard = suppress_events();
        let s = span!("quiet");
        clock::tick_forward(1);
        assert!(s.finish().forward >= 1);
    }

    #[test]
    fn span_timing_work_sums_passes() {
        let t = SpanTiming::new(1.5, 4, 6);
        assert_eq!(t.work(), 10);
        assert_eq!(SpanTiming::default().work(), 0);
    }
}
