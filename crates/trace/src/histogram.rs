//! Fixed-boundary histograms.
//!
//! Observations accumulate in memory (per metric path, inside the
//! tracer) and are emitted as a single [`crate::EventKind::Histogram`]
//! event at flush time. Bucket boundaries are fixed at construction, so
//! bucket counts — like every other logical field — are deterministic
//! across thread counts as long as the observation stream is.

use crate::event::FieldValue;

/// Default bucket upper bounds, tuned for the quantities this workspace
/// observes (losses, accuracies, l∞ drifts — mostly `[0, 1]`-ish with an
/// occasional larger loss).
pub const DEFAULT_BOUNDS: &[f64] = &[0.001, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0];

/// A histogram with inclusive upper-bound buckets.
///
/// A value `v` lands in the first bucket whose bound satisfies
/// `v <= bound`; values above the last bound land in the overflow
/// bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket at the end.
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, not strictly increasing, or contains
    /// a non-finite value.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(bounds.iter().all(|b| b.is_finite()), "histogram bounds must be finite");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// A histogram with [`DEFAULT_BOUNDS`].
    pub fn with_default_bounds() -> Self {
        Histogram::new(DEFAULT_BOUNDS)
    }

    /// Index of the bucket `v` falls into (`bounds.len()` = overflow).
    fn bucket_index(&self, v: f64) -> usize {
        self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len())
    }

    /// Records one observation. Non-finite values count toward `count`
    /// and the overflow bucket but are excluded from `sum`/`min`/`max`.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
            let i = self.bucket_index(v);
            self.buckets[i] += 1;
        } else {
            let last = self.buckets.len() - 1;
            self.buckets[last] += 1;
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of finite observations (in observation order, so the float
    /// accumulation itself is deterministic).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Per-bucket counts (bounds order, then the overflow bucket).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Nearest-rank percentile estimate, resolved to bucket upper
    /// bounds: the smallest bound whose cumulative count covers rank
    /// `ceil(q · count)`. Returns `None` on an empty histogram; an
    /// observation that landed in the overflow bucket (including
    /// non-finite values) resolves to the recorded `max` when finite,
    /// else the last bound.
    ///
    /// Because the answer is a function of the deterministic bucket
    /// counts alone, a percentile over logical quantities is itself
    /// logical — safe to gate on, unlike a wall-clock percentile.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < q <= 1.0`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1], got {q}");
        if self.count == 0 {
            return None;
        }
        let rank = (q * self.count as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (bound, bucket) in self.bounds.iter().zip(&self.buckets) {
            cumulative += bucket;
            if cumulative >= rank {
                return Some(*bound);
            }
        }
        // Rank falls in the overflow bucket.
        Some(if self.max.is_finite() { self.max } else { self.bounds[self.bounds.len() - 1] })
    }

    /// Lowers the histogram into event fields: `count`, `sum`, `min`,
    /// `max` (the latter two only when non-empty), then one
    /// `le_<bound>` count per bucket and a trailing `gt_<last>` overflow
    /// count.
    pub fn to_fields(&self) -> Vec<(String, FieldValue)> {
        let mut fields = vec![
            ("count".to_string(), FieldValue::U64(self.count)),
            ("sum".to_string(), FieldValue::F64(self.sum)),
        ];
        if self.min.is_finite() {
            fields.push(("min".to_string(), FieldValue::F64(self.min)));
            fields.push(("max".to_string(), FieldValue::F64(self.max)));
        }
        for (b, n) in self.bounds.iter().zip(&self.buckets) {
            fields.push((format!("le_{b}"), FieldValue::U64(*n)));
        }
        let last = self.bounds[self.bounds.len() - 1];
        fields.push((format!("gt_{last}"), FieldValue::U64(self.buckets[self.bounds.len()])));
        fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_inclusive_upper_bound() {
        let mut h = Histogram::new(&[0.1, 0.5, 1.0]);
        h.observe(0.05); // <= 0.1
        h.observe(0.1); // == 0.1, inclusive -> first bucket
        h.observe(0.3); // <= 0.5
        h.observe(1.0); // == 1.0 -> third bucket
        h.observe(2.0); // overflow
        h.observe(-1.0); // below everything -> first bucket
        assert_eq!(h.buckets(), &[3, 1, 1, 1]);
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 2.45).abs() < 1e-12);
    }

    #[test]
    fn non_finite_observations_go_to_overflow_without_poisoning_sum() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(0.5);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets(), &[1, 2]);
        assert!((h.sum() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn to_fields_has_stable_schema() {
        let mut h = Histogram::new(&[0.5, 1.0]);
        h.observe(0.25);
        let keys: Vec<String> = h.to_fields().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["count", "sum", "min", "max", "le_0.5", "le_1", "gt_1"]);
        // empty histogram drops min/max
        let keys: Vec<String> =
            Histogram::new(&[0.5, 1.0]).to_fields().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["count", "sum", "le_0.5", "le_1", "gt_1"]);
    }

    #[test]
    fn default_bounds_are_valid() {
        let h = Histogram::with_default_bounds();
        assert_eq!(h.buckets().len(), DEFAULT_BOUNDS.len() + 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::new(&[1.0, 0.5]);
    }

    #[test]
    fn percentile_of_empty_histogram_is_none() {
        let h = Histogram::new(&[0.5, 1.0]);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.percentile(0.99), None);
    }

    #[test]
    fn percentile_of_single_sample_is_its_bucket_bound() {
        let mut h = Histogram::new(&[0.1, 0.5, 1.0]);
        h.observe(0.3);
        // Every quantile of one sample resolves to the sample's bucket.
        assert_eq!(h.percentile(0.01), Some(0.5));
        assert_eq!(h.percentile(0.5), Some(0.5));
        assert_eq!(h.percentile(1.0), Some(0.5));
    }

    #[test]
    fn percentile_of_all_equal_samples_is_flat() {
        let mut h = Histogram::new(&[0.1, 0.5, 1.0]);
        for _ in 0..37 {
            h.observe(0.07);
        }
        for q in [0.01, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(0.1), "q={q}");
        }
    }

    #[test]
    fn p99_on_fewer_than_100_samples_is_the_top_bucket() {
        // With n < 100, rank ceil(0.99 n) == n: p99 must track the
        // largest observation's bucket, not under-read into lower ones.
        let mut h = Histogram::new(&[0.1, 0.5, 1.0, 2.0]);
        for _ in 0..49 {
            h.observe(0.05);
        }
        h.observe(1.5);
        assert_eq!(h.count(), 50);
        assert_eq!(h.percentile(0.99), Some(2.0));
        assert_eq!(h.percentile(0.98), Some(0.1));
    }

    #[test]
    fn overflow_percentile_reports_observed_max() {
        let mut h = Histogram::new(&[0.5, 1.0]);
        h.observe(7.25);
        assert_eq!(h.percentile(1.0), Some(7.25));
        // A purely non-finite overflow falls back to the last bound.
        let mut nf = Histogram::new(&[0.5, 1.0]);
        nf.observe(f64::INFINITY);
        assert_eq!(nf.percentile(1.0), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1]")]
    fn zero_quantile_is_rejected() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(0.5);
        let _ = h.percentile(0.0);
    }
}
