//! Folding a JSONL trace into per-span aggregate timings — the engine
//! behind the CLI's `trace summarize` subcommand.
//!
//! Parsing is schema-strict: any line that is not a valid [`Event`]
//! produces a [`SummaryError`] naming the offending line, which the CLI
//! turns into a non-zero exit (CI's schema gate).

use crate::event::{Event, EventKind, FieldValue};
use std::collections::BTreeMap;
use std::fmt;

/// A malformed trace: the 1-based line number and the parse failure.
#[derive(Debug)]
pub struct SummaryError {
    /// 1-based line number of the invalid event.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for SummaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trace event at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SummaryError {}

/// Aggregate statistics for one span path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanAggregate {
    /// Completed spans at this path.
    pub count: u64,
    /// Total wall microseconds across closes (from `meta.wall_us`).
    pub wall_us_total: u64,
    /// Largest single close.
    pub wall_us_max: u64,
    /// Total logical forward passes.
    pub forward: u64,
    /// Total logical backward passes.
    pub backward: u64,
    /// Total flops proxy.
    pub flops: u64,
    /// Total attack steps.
    pub attack_steps: u64,
}

impl SpanAggregate {
    /// Mean wall microseconds per close (0 when empty).
    pub fn wall_us_mean(&self) -> u64 {
        self.wall_us_total.checked_div(self.count).unwrap_or(0)
    }
}

/// Everything `trace summarize` reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    /// Total events parsed.
    pub events: u64,
    /// Per-span aggregates keyed by span path.
    pub spans: BTreeMap<String, SpanAggregate>,
    /// Counter totals keyed by path (sum of `fields.value`).
    pub counters: BTreeMap<String, u64>,
    /// Gauge observation counts and last values keyed by path.
    pub gauges: BTreeMap<String, (u64, f64)>,
    /// Histogram flushes: observation count and sum keyed by path.
    pub histograms: BTreeMap<String, (u64, f64)>,
}

fn field_u64(event: &Event, key: &str) -> u64 {
    event
        .fields
        .iter()
        .chain(&event.meta)
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            FieldValue::U64(n) => Some(*n),
            _ => None,
        })
        .unwrap_or(0)
}

fn field_f64(event: &Event, key: &str) -> Option<f64> {
    event.fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
        FieldValue::F64(n) => Some(*n),
        FieldValue::U64(n) => Some(*n as f64),
        _ => None,
    })
}

impl Summary {
    /// Parses a full JSONL trace.
    ///
    /// # Errors
    ///
    /// Returns [`SummaryError`] on the first line that is not a valid
    /// event. Blank lines are permitted and skipped.
    pub fn from_jsonl(text: &str) -> Result<Summary, SummaryError> {
        let mut summary = Summary::default();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let event: Event = serde_json::from_str(line)
                .map_err(|e| SummaryError { line: i + 1, message: e.to_string() })?;
            summary.fold(&event);
        }
        Ok(summary)
    }

    /// Folds one event into the aggregates.
    pub fn fold(&mut self, event: &Event) {
        self.events += 1;
        match event.kind {
            EventKind::SpanOpen => {}
            EventKind::SpanClose => {
                let agg = self.spans.entry(event.path.clone()).or_default();
                agg.count += 1;
                let wall = field_u64(event, "wall_us");
                agg.wall_us_total += wall;
                agg.wall_us_max = agg.wall_us_max.max(wall);
                agg.forward += field_u64(event, "forward");
                agg.backward += field_u64(event, "backward");
                agg.flops += field_u64(event, "flops");
                agg.attack_steps += field_u64(event, "attack_steps");
            }
            EventKind::Counter => {
                *self.counters.entry(event.path.clone()).or_insert(0) += field_u64(event, "value");
            }
            EventKind::Gauge => {
                let entry = self.gauges.entry(event.path.clone()).or_insert((0, 0.0));
                entry.0 += 1;
                if let Some(v) = field_f64(event, "value") {
                    entry.1 = v;
                }
            }
            EventKind::Histogram => {
                let count = field_u64(event, "count");
                let sum = field_f64(event, "sum").unwrap_or(0.0);
                let entry = self.histograms.entry(event.path.clone()).or_insert((0, 0.0));
                entry.0 += count;
                entry.1 += sum;
            }
        }
    }

    /// Renders the per-span aggregate table (plus counter/gauge/histogram
    /// sections when present) as the CLI prints it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} events\n\n", self.events));
        out.push_str(&format!(
            "{:<40} {:>6} {:>12} {:>12} {:>12} {:>10} {:>10}\n",
            "span", "count", "total_ms", "mean_ms", "max_ms", "forward", "backward"
        ));
        for (path, agg) in &self.spans {
            out.push_str(&format!(
                "{:<40} {:>6} {:>12.3} {:>12.3} {:>12.3} {:>10} {:>10}\n",
                path,
                agg.count,
                agg.wall_us_total as f64 / 1e3,
                agg.wall_us_mean() as f64 / 1e3,
                agg.wall_us_max as f64 / 1e3,
                agg.forward,
                agg.backward,
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("\ncounters\n");
            for (path, total) in &self.counters {
                out.push_str(&format!("  {path} = {total}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\ngauges (observations, last value)\n");
            for (path, (n, last)) in &self.gauges {
                out.push_str(&format!("  {path}: {n} obs, last {last:.6}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("\nhistograms (count, sum)\n");
            for (path, (n, sum)) in &self.histograms {
                out.push_str(&format!("  {path}: {n} obs, sum {sum:.6}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seq: u64, kind: EventKind, path: &str, fields: &[(&str, FieldValue)]) -> String {
        let meta = if kind == EventKind::SpanClose {
            vec![("wall_us".to_string(), FieldValue::U64(1000 * (seq + 1)))]
        } else {
            Vec::new()
        };
        Event {
            seq,
            kind,
            path: path.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
            meta,
            ctx: None,
        }
        .to_json_line()
    }

    #[test]
    fn folds_span_closes_into_aggregates() {
        let text = [
            line(0, EventKind::SpanOpen, "train", &[]),
            line(1, EventKind::SpanClose, "train/epoch", &[("forward", FieldValue::U64(4))]),
            line(2, EventKind::SpanClose, "train/epoch", &[("forward", FieldValue::U64(6))]),
            line(3, EventKind::Counter, "train/reset", &[("value", FieldValue::U64(1))]),
            line(4, EventKind::Gauge, "eval/accuracy", &[("value", FieldValue::F64(0.75))]),
            line(
                5,
                EventKind::Histogram,
                "loss",
                &[("count", FieldValue::U64(3)), ("sum", FieldValue::F64(1.5))],
            ),
        ]
        .join("\n");
        let s = Summary::from_jsonl(&text).expect("valid trace");
        assert_eq!(s.events, 6);
        let agg = &s.spans["train/epoch"];
        assert_eq!(agg.count, 2);
        assert_eq!(agg.forward, 10);
        assert_eq!(agg.wall_us_total, 2000 + 3000);
        assert_eq!(agg.wall_us_max, 3000);
        assert_eq!(agg.wall_us_mean(), 2500);
        assert_eq!(s.counters["train/reset"], 1);
        assert_eq!(s.gauges["eval/accuracy"], (1, 0.75));
        assert_eq!(s.histograms["loss"], (3, 1.5));
        let table = s.render();
        assert!(table.contains("train/epoch"));
        assert!(table.contains("eval/accuracy"));
    }

    #[test]
    fn invalid_line_reports_its_number() {
        let text = format!("{}\nnot json\n", line(0, EventKind::SpanOpen, "a", &[]));
        let err = Summary::from_jsonl(&text).expect_err("line 2 is invalid");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn schema_invalid_event_is_an_error_even_if_valid_json() {
        let text = r#"{"seq":0,"kind":"gauge","path":"p","fields":{},"meta":{},"extra":1}"#;
        assert!(Summary::from_jsonl(text).is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("\n{}\n\n", line(0, EventKind::Counter, "c", &[]));
        let s = Summary::from_jsonl(&text).expect("valid");
        assert_eq!(s.events, 1);
    }
}
