//! The process-wide logical clock.
//!
//! Wall time varies with machine load and `--threads`; the logical clock
//! does not. It counts *work*: model forward/backward passes, a flops
//! proxy for tensor kernels, and attack gradient steps. Under the
//! runtime's determinism contract (fixed chunking, thread-independent
//! call structure) every counter here advances by exactly the same
//! amount no matter how many workers execute the work — atomic adds
//! commute, and the *number and size* of ticks is thread-invariant. Span
//! closes therefore report logical deltas that are bitwise comparable
//! across thread counts.
//!
//! A second family of counters is explicitly **non-logical** (pool
//! regions/tasks, busy nanoseconds, spawned threads): parallel dispatch
//! decisions depend on the thread count, so these land in event `meta`,
//! never in `fields`.

use std::sync::atomic::{AtomicU64, Ordering};

static FORWARD: AtomicU64 = AtomicU64::new(0);
static BACKWARD: AtomicU64 = AtomicU64::new(0);
static FLOPS: AtomicU64 = AtomicU64::new(0);
static ATTACK_STEPS: AtomicU64 = AtomicU64::new(0);
static POOL_REGIONS: AtomicU64 = AtomicU64::new(0);
static POOL_TASKS: AtomicU64 = AtomicU64::new(0);
static BUSY_NS: AtomicU64 = AtomicU64::new(0);
static SPAWNED_THREADS: AtomicU64 = AtomicU64::new(0);

/// Records `n` model forward passes.
pub fn tick_forward(n: u64) {
    FORWARD.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` model backward passes.
pub fn tick_backward(n: u64) {
    BACKWARD.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` multiply-accumulate operations (the flops proxy).
pub fn add_flops(n: u64) {
    FLOPS.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` signed-gradient attack steps.
pub fn tick_attack_steps(n: u64) {
    ATTACK_STEPS.fetch_add(n, Ordering::Relaxed);
}

/// Records one parallel region dispatching `tasks` tasks (non-logical:
/// whether a kernel parallelises depends on the thread count).
pub fn tick_pool_region(tasks: u64) {
    POOL_REGIONS.fetch_add(1, Ordering::Relaxed);
    POOL_TASKS.fetch_add(tasks, Ordering::Relaxed);
}

/// Records `ns` nanoseconds a worker spent executing a task
/// (non-logical).
pub fn add_busy_ns(ns: u64) {
    BUSY_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Records `n` worker threads spawned for a region (non-logical).
pub fn add_spawned_threads(n: u64) {
    SPAWNED_THREADS.fetch_add(n, Ordering::Relaxed);
}

/// A point-in-time reading of every clock counter.
///
/// Spans snapshot the clock when they open and report the delta when
/// they close; [`ClockSnapshot::delta_since`] computes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClockSnapshot {
    /// Model forward passes (logical).
    pub forward: u64,
    /// Model backward passes (logical).
    pub backward: u64,
    /// Multiply-accumulate proxy (logical).
    pub flops: u64,
    /// Signed-gradient attack steps (logical).
    pub attack_steps: u64,
    /// Parallel regions dispatched (non-logical).
    pub pool_regions: u64,
    /// Tasks dispatched across regions (non-logical).
    pub pool_tasks: u64,
    /// Nanoseconds of worker task execution (non-logical).
    pub busy_ns: u64,
    /// Worker threads spawned (non-logical).
    pub spawned_threads: u64,
}

impl ClockSnapshot {
    /// The counter-wise difference `self - earlier` (saturating, so a
    /// stale snapshot can never underflow).
    pub fn delta_since(&self, earlier: &ClockSnapshot) -> ClockSnapshot {
        ClockSnapshot {
            forward: self.forward.saturating_sub(earlier.forward),
            backward: self.backward.saturating_sub(earlier.backward),
            flops: self.flops.saturating_sub(earlier.flops),
            attack_steps: self.attack_steps.saturating_sub(earlier.attack_steps),
            pool_regions: self.pool_regions.saturating_sub(earlier.pool_regions),
            pool_tasks: self.pool_tasks.saturating_sub(earlier.pool_tasks),
            busy_ns: self.busy_ns.saturating_sub(earlier.busy_ns),
            spawned_threads: self.spawned_threads.saturating_sub(earlier.spawned_threads),
        }
    }
}

/// Reads the current clock.
pub fn snapshot() -> ClockSnapshot {
    ClockSnapshot {
        forward: FORWARD.load(Ordering::Relaxed),
        backward: BACKWARD.load(Ordering::Relaxed),
        flops: FLOPS.load(Ordering::Relaxed),
        attack_steps: ATTACK_STEPS.load(Ordering::Relaxed),
        pool_regions: POOL_REGIONS.load(Ordering::Relaxed),
        pool_tasks: POOL_TASKS.load(Ordering::Relaxed),
        busy_ns: BUSY_NS.load(Ordering::Relaxed),
        spawned_threads: SPAWNED_THREADS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_advance_the_snapshot() {
        let before = snapshot();
        tick_forward(3);
        tick_backward(2);
        add_flops(100);
        tick_attack_steps(5);
        tick_pool_region(4);
        add_busy_ns(1_000);
        add_spawned_threads(1);
        let delta = snapshot().delta_since(&before);
        // Other tests tick concurrently, so deltas are lower bounds.
        assert!(delta.forward >= 3);
        assert!(delta.backward >= 2);
        assert!(delta.flops >= 100);
        assert!(delta.attack_steps >= 5);
        assert!(delta.pool_regions >= 1);
        assert!(delta.pool_tasks >= 4);
        assert!(delta.busy_ns >= 1_000);
        assert!(delta.spawned_threads >= 1);
    }

    #[test]
    fn delta_saturates_instead_of_underflowing() {
        let older = ClockSnapshot { forward: 10, ..ClockSnapshot::default() };
        let newer = ClockSnapshot { forward: 4, ..ClockSnapshot::default() };
        assert_eq!(newer.delta_since(&older).forward, 0);
    }
}

/// A monotonic wall-clock stopwatch — the one sanctioned wrapper around
/// `std::time::Instant` in the workspace (lint rule R10 confines direct
/// `Instant`/`SystemTime` reads to this module and `crates/obs`).
///
/// Wall time is inherently non-logical: it varies with machine load and
/// `--threads`. Forcing every reader through this type keeps that
/// nondeterminism funneled into the same quarantine as the non-logical
/// clock counters above, so a grep for `WallTimer` finds every place a
/// wall measurement can enter the system.
#[derive(Debug, Clone, Copy)]
pub struct WallTimer {
    start: std::time::Instant,
}

impl WallTimer {
    /// Starts the stopwatch now.
    pub fn start() -> WallTimer {
        WallTimer { start: std::time::Instant::now() }
    }

    /// Seconds elapsed since [`WallTimer::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Whole microseconds elapsed since [`WallTimer::start`].
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Whole nanoseconds elapsed since [`WallTimer::start`].
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}
