//! Cross-process trace identity: trace ids, span ids, and their
//! propagation encoding.
//!
//! A campaign is many processes (the sweep orchestrator, its cell
//! children, a serve client and server), each writing its own JSONL
//! trace. [`TraceContext`] is the causal thread between them: a 128-bit
//! trace id naming the campaign-wide trace, a 64-bit span id naming one
//! span inside it, and an optional parent link. The context crosses
//! process boundaries as a W3C-traceparent-style string — via the
//! [`TRACEPARENT_ENV`] environment variable for spawned children, or an
//! `X-Simpadv-Traceparent` header for serve requests — and the collector
//! in `simpadv-obs` stitches the per-process traces back into one rooted
//! campaign tree by following the parent links.
//!
//! # Determinism
//!
//! Nothing in this module touches entropy or wall clocks. Span ids are
//! derived by [`derive_child`], a pure mix of the parent span id and the
//! tracer's event sequence number at open time — and that sequence is
//! thread-invariant (worker emission is suppressed), so the entire id
//! chain of a campaign is bitwise reproducible across `--threads`
//! settings and across crash/resume replays of the same logical events.
//! Trace ids come from [`derive_trace_id`], a pure hash of a label and
//! seed. Both functions are S2 taint sinks in `lint.toml`: the semantic
//! pass rejects any call path feeding them wall-clock or entropy values.

/// Environment variable carrying the parent context into spawned
/// children (the sweep orchestrator sets it per cell attempt).
pub const TRACEPARENT_ENV: &str = "SIMPADV_TRACEPARENT";

/// Schema version of the `ctx` object embedded in trace events.
pub const CONTEXT_SCHEMA_VERSION: u64 = 1;

/// The identity of one span within a campaign-wide trace.
///
/// `parent` is the *remote-parent link*: the span id this span hangs
/// under, which may live in a different process's trace file. `None`
/// marks a campaign root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit id shared by every span of one campaign.
    pub trace_id: u128,
    /// 64-bit id of this span.
    pub span_id: u64,
    /// Span id of the parent, possibly in another process's trace.
    pub parent: Option<u64>,
}

impl TraceContext {
    /// Renders the context in the W3C traceparent layout:
    /// `00-{trace_id:032x}-{span_id:016x}-01`.
    ///
    /// The parent link is deliberately not encoded — to a receiving
    /// process, this context's `span_id` *is* the remote parent.
    pub fn encode(&self) -> String {
        format!("00-{:032x}-{:016x}-01", self.trace_id, self.span_id)
    }

    /// Parses a traceparent string produced by [`TraceContext::encode`].
    ///
    /// Strict by design: version `00`, lowercase hex, exact field
    /// widths, flags `01`, and non-zero ids (all-zero ids are invalid in
    /// the W3C layout). Anything else returns `None` and the receiver
    /// simply runs uncorrelated rather than guessing.
    pub fn parse(s: &str) -> Option<TraceContext> {
        let parts: Vec<&str> = s.split('-').collect();
        if parts.len() != 4 || parts[0] != "00" || parts[3] != "01" {
            return None;
        }
        let trace_id = parse_hex_u128(parts[1], 32)?;
        let span_id = parse_hex_u128(parts[2], 16)? as u64;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(TraceContext { trace_id, span_id, parent: None })
    }

    /// Reads and parses [`TRACEPARENT_ENV`]; `None` when unset or
    /// malformed.
    pub fn from_env() -> Option<TraceContext> {
        std::env::var(TRACEPARENT_ENV).ok().and_then(|v| TraceContext::parse(&v))
    }
}

/// Parses exactly `width` lowercase hex digits.
fn parse_hex_u128(s: &str, width: usize) -> Option<u128> {
    if s.len() != width {
        return None;
    }
    let mut value: u128 = 0;
    for c in s.chars() {
        let digit = match c {
            '0'..='9' => c as u128 - '0' as u128,
            'a'..='f' => c as u128 - 'a' as u128 + 10,
            // Uppercase is rejected: encode() emits lowercase only, and
            // a strict parse keeps round-trips bijective.
            _ => return None,
        };
        value = (value << 4) | digit;
    }
    Some(value)
}

/// Derives a child span id from its parent's id and the tracer's event
/// sequence number at open time.
///
/// A splitmix64-style finalizer over the pair: pure, entropy-free, and
/// bitwise reproducible — the same (parent, seq) always yields the same
/// id, which is what lets a resumed campaign regrow the identical id
/// chain. Never returns zero (the invalid span id).
pub fn derive_child(parent_span_id: u64, seq: u64) -> u64 {
    let mut z = parent_span_id ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z == 0 {
        // Vanishingly rare, but zero is reserved for "no id".
        0x5143_5143_5143_5143
    } else {
        z
    }
}

/// Derives a campaign trace id from a label and seed — e.g. the sweep
/// verb and the grid seed — so re-running the same campaign config
/// yields the same trace id. Pure FNV-1a over both inputs; never zero.
pub fn derive_trace_id(label: &str, seed: u64) -> u128 {
    let hi = fnv1a_64(label.as_bytes(), 0xCBF2_9CE4_8422_2325 ^ seed);
    let lo = fnv1a_64(label.as_bytes(), 0x6C62_272E_07BB_0142 ^ seed.rotate_left(32));
    let id = (u128::from(hi) << 64) | u128::from(lo);
    if id == 0 {
        1
    } else {
        id
    }
}

/// The derivation base for a campaign root span (a span with no parent):
/// a fold of the trace id, so distinct campaigns root distinct id chains.
pub fn root_parent(trace_id: u128) -> u64 {
    let folded = ((trace_id >> 64) as u64) ^ (trace_id as u64);
    if folded == 0 {
        0x7A61_7A61_7A61_7A61
    } else {
        folded
    }
}

/// FNV-1a with a caller-chosen offset basis (folds the seed in).
fn fnv1a_64(bytes: &[u8], basis: u64) -> u64 {
    let mut hash = basis;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_parse_roundtrip() {
        let ctx = TraceContext { trace_id: 0xDEAD_BEEF, span_id: 0x1234, parent: Some(7) };
        let s = ctx.encode();
        assert_eq!(s, "00-000000000000000000000000deadbeef-0000000000001234-01");
        let back = TraceContext::parse(&s).unwrap();
        assert_eq!(back.trace_id, ctx.trace_id);
        assert_eq!(back.span_id, ctx.span_id);
        // The parent link does not survive the wire: the receiver's
        // parent IS the encoded span.
        assert_eq!(back.parent, None);
    }

    #[test]
    fn parse_rejects_malformed_inputs() {
        for bad in [
            "",
            "00",
            "01-000000000000000000000000deadbeef-0000000000001234-01",
            "00-000000000000000000000000deadbeef-0000000000001234-00",
            "00-000000000000000000000000DEADBEEF-0000000000001234-01",
            "00-00000000000000000000000000000000-0000000000001234-01",
            "00-000000000000000000000000deadbeef-0000000000000000-01",
            "00-deadbeef-1234-01",
            "00-000000000000000000000000deadbeeg-0000000000001234-01",
            "00-000000000000000000000000deadbeef-0000000000001234-01-extra",
        ] {
            assert_eq!(TraceContext::parse(bad), None, "should reject {bad:?}");
        }
    }

    #[test]
    fn derive_child_is_pure_and_nonzero() {
        let a = derive_child(17, 42);
        assert_eq!(a, derive_child(17, 42));
        assert_ne!(a, 0);
        assert_ne!(a, derive_child(17, 43));
        assert_ne!(a, derive_child(18, 42));
    }

    #[test]
    fn derive_trace_id_depends_on_label_and_seed() {
        let a = derive_trace_id("sweep", 2019);
        assert_eq!(a, derive_trace_id("sweep", 2019));
        assert_ne!(a, 0);
        assert_ne!(a, derive_trace_id("sweep", 2020));
        assert_ne!(a, derive_trace_id("serve", 2019));
    }

    #[test]
    fn env_roundtrip_via_traceparent_variable() {
        let ctx = TraceContext { trace_id: 99, span_id: 5, parent: None };
        std::env::set_var(TRACEPARENT_ENV, ctx.encode());
        let back = TraceContext::from_env().unwrap();
        std::env::remove_var(TRACEPARENT_ENV);
        assert_eq!(back.trace_id, 99);
        assert_eq!(back.span_id, 5);
        assert_eq!(TraceContext::from_env(), None);
    }

    #[test]
    fn root_parent_folds_and_avoids_zero() {
        assert_ne!(root_parent(0), 0);
        // hi == lo folds to zero, which must map to the sentinel.
        assert_eq!(root_parent((1u128 << 64) | 1), 0x7A61_7A61_7A61_7A61);
        assert_eq!(root_parent(3), 3);
    }
}
