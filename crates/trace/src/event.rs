//! The telemetry event model and its JSONL schema.
//!
//! Every event is one JSON object per line:
//!
//! ```json
//! {"seq":3,"kind":"span_close","path":"train/epoch",
//!  "fields":{"forward":12,"backward":12},"meta":{"wall_us":532}}
//! ```
//!
//! `fields` carries **logical** payload — values that are bitwise
//! identical across thread counts under the workspace determinism
//! contract — while `meta` carries non-logical measurements (wall time,
//! pool utilisation). Comparing two traces for determinism means
//! comparing events with `meta` stripped (see [`Event::without_meta`]).

use crate::context::{TraceContext, CONTEXT_SCHEMA_VERSION};
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A single telemetry field value.
///
/// Floating-point equality is **bitwise** (`to_bits`), so comparing
/// events compares logical payloads exactly, as the determinism contract
/// requires.
#[derive(Debug, Clone)]
pub enum FieldValue {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned counter/index.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point measurement.
    F64(f64),
    /// Free-form label (trainer id, attack id, check name…).
    Str(String),
}

impl PartialEq for FieldValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (FieldValue::Bool(a), FieldValue::Bool(b)) => a == b,
            (FieldValue::U64(a), FieldValue::U64(b)) => a == b,
            (FieldValue::I64(a), FieldValue::I64(b)) => a == b,
            (FieldValue::F64(a), FieldValue::F64(b)) => a.to_bits() == b.to_bits(),
            (FieldValue::Str(a), FieldValue::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(f64::from(v))
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl Serialize for FieldValue {
    fn to_value(&self) -> Value {
        match self {
            FieldValue::Bool(v) => Value::Bool(*v),
            FieldValue::U64(v) => Value::U64(*v),
            FieldValue::I64(v) => Value::I64(*v),
            FieldValue::F64(v) => Value::F64(*v),
            FieldValue::Str(v) => Value::String(v.clone()),
        }
    }
}

impl Deserialize for FieldValue {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        match value {
            Value::Bool(v) => Ok(FieldValue::Bool(*v)),
            Value::U64(v) => Ok(FieldValue::U64(*v)),
            Value::I64(v) => Ok(FieldValue::I64(*v)),
            Value::F64(v) => Ok(FieldValue::F64(*v)),
            Value::String(v) => Ok(FieldValue::Str(v.clone())),
            other => Err(serde::Error::custom(format!("invalid field value {other:?}"))),
        }
    }
}

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span began; `fields` holds the user-supplied span attributes.
    SpanOpen,
    /// A span ended; `fields` holds the logical clock deltas accumulated
    /// while it was open, `meta` holds wall time and pool statistics.
    SpanClose,
    /// A monotonic count (reset events, audit checks…).
    Counter,
    /// A point-in-time measurement (accuracy, drift…).
    Gauge,
    /// A flushed histogram: bucket counts plus count/sum/min/max.
    Histogram,
}

impl EventKind {
    /// The schema string for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanOpen => "span_open",
            EventKind::SpanClose => "span_close",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::Histogram => "histogram",
        }
    }

    /// Parses a schema string back into a kind.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "span_open" => EventKind::SpanOpen,
            "span_close" => EventKind::SpanClose,
            "counter" => EventKind::Counter,
            "gauge" => EventKind::Gauge,
            "histogram" => EventKind::Histogram,
            _ => return None,
        })
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One telemetry event.
///
/// Events are totally ordered by `seq`, a counter the tracer assigns
/// under its emission lock. Because workers inside parallel regions are
/// suppressed (only the orchestrating thread emits), the sequence — and
/// every value in `fields` — is identical for any `--threads` setting.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Deterministic emission index within the trace.
    pub seq: u64,
    /// What this event records.
    pub kind: EventKind,
    /// Slash-joined span path (`train/epoch`, `eval_suite/eval_clean`…).
    pub path: String,
    /// Logical payload — deterministic across thread counts.
    pub fields: Vec<(String, FieldValue)>,
    /// Non-logical payload — wall time, pool statistics.
    pub meta: Vec<(String, FieldValue)>,
    /// Cross-process identity of a `SpanOpen` event, when the tracer has
    /// a campaign context. Logical like `fields`: the ids derive from
    /// the thread-invariant sequence, so they survive determinism
    /// comparisons. Absent (and unserialized) for uncorrelated runs,
    /// which keeps their traces byte-identical to the pre-context
    /// schema.
    pub ctx: Option<TraceContext>,
}

impl Event {
    /// A copy with `meta` cleared — the logical projection two
    /// determinism-compared traces must agree on.
    pub fn without_meta(&self) -> Event {
        Event { meta: Vec::new(), ..self.clone() }
    }

    /// Renders the event as one JSONL line (no trailing newline).
    ///
    /// # Panics
    ///
    /// Panics if JSON rendering fails, which cannot happen for a
    /// well-formed event (the schema has no fallible cases).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|e| panic!("{e}"))
    }
}

fn pairs_to_object(pairs: &[(String, FieldValue)]) -> Value {
    Value::Object(pairs.iter().map(|(k, v)| (k.clone(), Serialize::to_value(v))).collect())
}

fn object_to_pairs(value: &Value, key: &str) -> Result<Vec<(String, FieldValue)>, serde::Error> {
    match value {
        Value::Object(entries) => {
            entries.iter().map(|(k, v)| Ok((k.clone(), FieldValue::from_value(v)?))).collect()
        }
        other => Err(serde::Error::custom(format!("`{key}` must be an object, got {other:?}"))),
    }
}

fn ctx_to_value(ctx: &TraceContext) -> Value {
    let mut entries = vec![
        ("v".to_string(), Value::U64(CONTEXT_SCHEMA_VERSION)),
        ("trace".to_string(), Value::String(format!("{:032x}", ctx.trace_id))),
        ("span".to_string(), Value::String(format!("{:016x}", ctx.span_id))),
    ];
    if let Some(parent) = ctx.parent {
        entries.push(("parent".to_string(), Value::String(format!("{parent:016x}"))));
    }
    Value::Object(entries)
}

fn ctx_hex_u128(value: &Value, key: &str, width: usize) -> Result<u128, serde::Error> {
    let Value::String(s) = value else {
        return Err(serde::Error::custom(format!("ctx `{key}` must be a hex string")));
    };
    if s.len() != width || !s.chars().all(|c| c.is_ascii_digit() || ('a'..='f').contains(&c)) {
        return Err(serde::Error::custom(format!(
            "ctx `{key}` must be {width} lowercase hex digits, got {s:?}"
        )));
    }
    u128::from_str_radix(s, 16)
        .map_err(|e| serde::Error::custom(format!("ctx `{key}` out of range: {e}")))
}

fn ctx_from_value(value: &Value) -> Result<TraceContext, serde::Error> {
    let Value::Object(entries) = value else {
        return Err(serde::Error::custom("`ctx` must be an object"));
    };
    let mut version = None;
    let mut trace = None;
    let mut span = None;
    let mut parent = None;
    for (k, v) in entries {
        match k.as_str() {
            "v" => match v {
                Value::U64(n) => version = Some(*n),
                other => {
                    return Err(serde::Error::custom(format!(
                        "ctx `v` must be an integer, got {other:?}"
                    )))
                }
            },
            "trace" => trace = Some(ctx_hex_u128(v, "trace", 32)?),
            "span" => span = Some(ctx_hex_u128(v, "span", 16)? as u64),
            "parent" => parent = Some(ctx_hex_u128(v, "parent", 16)? as u64),
            other => {
                return Err(serde::Error::custom(format!("unknown ctx key `{other}`")));
            }
        }
    }
    match version {
        Some(CONTEXT_SCHEMA_VERSION) => {}
        Some(other) => {
            return Err(serde::Error::custom(format!("unsupported ctx schema version {other}")))
        }
        None => return Err(serde::Error::custom("ctx missing `v`")),
    }
    Ok(TraceContext {
        trace_id: trace.ok_or_else(|| serde::Error::custom("ctx missing `trace`"))?,
        span_id: span.ok_or_else(|| serde::Error::custom("ctx missing `span`"))?,
        parent,
    })
}

impl Serialize for Event {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("seq".to_string(), Value::U64(self.seq)),
            ("kind".to_string(), Value::String(self.kind.as_str().to_string())),
            ("path".to_string(), Value::String(self.path.clone())),
            ("fields".to_string(), pairs_to_object(&self.fields)),
            ("meta".to_string(), pairs_to_object(&self.meta)),
        ];
        // `ctx` is appended only when present, so context-free traces
        // remain byte-identical to the pre-context schema.
        if let Some(ctx) = &self.ctx {
            entries.push(("ctx".to_string(), ctx_to_value(ctx)));
        }
        Value::Object(entries)
    }
}

impl Deserialize for Event {
    /// Strict schema: the five keys `seq`, `kind`, `path`, `fields`,
    /// `meta` (all required, with a known `kind` string) plus an
    /// optional `ctx` object that is itself strictly validated (version
    /// `v`, hex `trace`/`span`/`parent`, nothing else). Any other key is
    /// an error — `trace summarize` turns that into a non-zero exit,
    /// which is what CI's schema check relies on.
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let Value::Object(entries) = value else {
            return Err(serde::Error::custom("event must be a JSON object"));
        };
        let mut seq = None;
        let mut kind = None;
        let mut path = None;
        let mut fields = None;
        let mut meta = None;
        let mut ctx = None;
        for (k, v) in entries {
            match k.as_str() {
                "seq" => match v {
                    Value::U64(n) => seq = Some(*n),
                    other => {
                        return Err(serde::Error::custom(format!(
                            "`seq` must be a non-negative integer, got {other:?}"
                        )))
                    }
                },
                "kind" => match v {
                    Value::String(s) => {
                        kind = Some(EventKind::parse(s).ok_or_else(|| {
                            serde::Error::custom(format!("unknown event kind `{s}`"))
                        })?);
                    }
                    other => {
                        return Err(serde::Error::custom(format!(
                            "`kind` must be a string, got {other:?}"
                        )))
                    }
                },
                "path" => match v {
                    Value::String(s) => path = Some(s.clone()),
                    other => {
                        return Err(serde::Error::custom(format!(
                            "`path` must be a string, got {other:?}"
                        )))
                    }
                },
                "fields" => fields = Some(object_to_pairs(v, "fields")?),
                "meta" => meta = Some(object_to_pairs(v, "meta")?),
                "ctx" => ctx = Some(ctx_from_value(v)?),
                other => {
                    return Err(serde::Error::custom(format!("unknown event key `{other}`")));
                }
            }
        }
        Ok(Event {
            seq: seq.ok_or_else(|| serde::Error::custom("event missing `seq`"))?,
            kind: kind.ok_or_else(|| serde::Error::custom("event missing `kind`"))?,
            path: path.ok_or_else(|| serde::Error::custom("event missing `path`"))?,
            fields: fields.ok_or_else(|| serde::Error::custom("event missing `fields`"))?,
            meta: meta.ok_or_else(|| serde::Error::custom("event missing `meta`"))?,
            ctx,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            seq: 7,
            kind: EventKind::SpanClose,
            path: "train/epoch".to_string(),
            fields: vec![
                ("forward".to_string(), FieldValue::U64(12)),
                ("loss".to_string(), FieldValue::F64(0.125)),
                ("trainer".to_string(), FieldValue::Str("proposed".to_string())),
                ("ok".to_string(), FieldValue::Bool(true)),
            ],
            meta: vec![("wall_us".to_string(), FieldValue::U64(532))],
            ctx: None,
        }
    }

    #[test]
    fn jsonl_roundtrip_is_exact() {
        let ev = sample();
        let line = ev.to_json_line();
        assert!(!line.contains('\n'));
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(back, ev);
        // a second render is byte-identical (stable key order)
        assert_eq!(back.to_json_line(), line);
    }

    #[test]
    fn float_fields_roundtrip_bitwise() {
        for v in [0.1f64, 1.0 / 3.0, 1e-17, -0.0, 12345.678901234567] {
            let ev = Event {
                seq: 0,
                kind: EventKind::Gauge,
                path: "g".to_string(),
                fields: vec![("value".to_string(), FieldValue::F64(v))],
                meta: Vec::new(),
                ctx: None,
            };
            let back: Event = serde_json::from_str(&ev.to_json_line()).unwrap();
            assert_eq!(back, ev, "value {v}");
        }
    }

    #[test]
    fn without_meta_strips_only_meta() {
        let ev = sample();
        let logical = ev.without_meta();
        assert!(logical.meta.is_empty());
        assert_eq!(logical.fields, ev.fields);
        assert_eq!(logical.seq, ev.seq);
    }

    #[test]
    fn schema_violations_are_rejected() {
        // unknown kind
        assert!(serde_json::from_str::<Event>(
            r#"{"seq":0,"kind":"bogus","path":"p","fields":{},"meta":{}}"#
        )
        .is_err());
        // missing key
        assert!(serde_json::from_str::<Event>(r#"{"seq":0,"kind":"gauge","fields":{},"meta":{}}"#)
            .is_err());
        // extra key
        assert!(serde_json::from_str::<Event>(
            r#"{"seq":0,"kind":"gauge","path":"p","fields":{},"meta":{},"x":1}"#
        )
        .is_err());
        // nested field value
        assert!(serde_json::from_str::<Event>(
            r#"{"seq":0,"kind":"gauge","path":"p","fields":{"a":[1]},"meta":{}}"#
        )
        .is_err());
        // not an object
        assert!(serde_json::from_str::<Event>("[1,2]").is_err());
    }

    #[test]
    fn ctx_roundtrips_and_is_optional() {
        let mut ev = sample();
        ev.kind = EventKind::SpanOpen;
        ev.ctx = Some(TraceContext {
            trace_id: 0xFEED_FACE_CAFE,
            span_id: 0xABCD,
            parent: Some(0x1234),
        });
        let line = ev.to_json_line();
        assert!(line.contains("\"ctx\""));
        assert!(line.contains("\"parent\""));
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(back, ev);
        assert_eq!(back.to_json_line(), line);

        // A root context omits the parent key entirely.
        ev.ctx = Some(TraceContext { trace_id: 1, span_id: 2, parent: None });
        let line = ev.to_json_line();
        assert!(!line.contains("parent"));
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(back.ctx.unwrap().parent, None);

        // No context, no ctx key: byte-identical to the old schema.
        ev.ctx = None;
        assert!(!ev.to_json_line().contains("ctx"));
    }

    #[test]
    fn ctx_schema_violations_are_rejected() {
        let prefix = r#"{"seq":0,"kind":"span_open","path":"p","fields":{},"meta":{},"#;
        for bad in [
            // missing version
            r#""ctx":{"trace":"00000000000000000000000000000001","span":"0000000000000002"}}"#,
            // wrong version
            r#""ctx":{"v":9,"trace":"00000000000000000000000000000001","span":"0000000000000002"}}"#,
            // unknown ctx key
            r#""ctx":{"v":1,"trace":"00000000000000000000000000000001","span":"0000000000000002","x":1}}"#,
            // wrong width
            r#""ctx":{"v":1,"trace":"01","span":"0000000000000002"}}"#,
            // uppercase hex
            r#""ctx":{"v":1,"trace":"0000000000000000000000000000000A","span":"0000000000000002"}}"#,
            // missing span
            r#""ctx":{"v":1,"trace":"00000000000000000000000000000001"}}"#,
            // not an object
            r#""ctx":7}"#,
        ] {
            let line = format!("{prefix}{bad}");
            assert!(serde_json::from_str::<Event>(&line).is_err(), "should reject {line}");
        }
    }

    #[test]
    fn field_value_equality_is_bitwise_for_floats() {
        assert_eq!(FieldValue::F64(0.5), FieldValue::F64(0.5));
        assert_ne!(FieldValue::F64(0.0), FieldValue::F64(-0.0));
        assert_ne!(FieldValue::U64(1), FieldValue::I64(1));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".to_string()));
    }

    #[test]
    fn kind_strings_roundtrip() {
        for kind in [
            EventKind::SpanOpen,
            EventKind::SpanClose,
            EventKind::Counter,
            EventKind::Gauge,
            EventKind::Histogram,
        ] {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert_eq!(EventKind::parse("nope"), None);
    }
}
