//! Property-based tests for the cross-process trace context: the
//! traceparent wire form round-trips exactly, malformed encodings are
//! rejected rather than misparsed, and the deterministic id derivations
//! are bitwise reproducible (the property resumed orchestrator
//! incarnations rely on to regrow the same campaign trace).

use proptest::prelude::*;
use simpadv_trace::context::{derive_child, derive_trace_id, root_parent};
use simpadv_trace::TraceContext;

/// A nonzero 128-bit trace id from two u64 halves (the shim has no
/// native u128 strategy); the high half starts at 1 so the id can
/// never be zero.
fn trace_ids() -> impl Strategy<Value = u128> {
    (1u64..u64::MAX, 0u64..u64::MAX).prop_map(|(hi, lo)| (u128::from(hi) << 64) | u128::from(lo))
}

fn span_ids() -> impl Strategy<Value = u64> {
    1u64..u64::MAX
}

proptest! {
    #[test]
    fn traceparent_encode_parse_round_trips(trace in trace_ids(), span in span_ids()) {
        let ctx = TraceContext { trace_id: trace, span_id: span, parent: None };
        let wire = ctx.encode();
        // the wire layout is fixed-width: 00-<32 hex>-<16 hex>-01
        prop_assert_eq!(wire.len(), 2 + 1 + 32 + 1 + 16 + 1 + 2);
        let back = TraceContext::parse(&wire);
        prop_assert_eq!(back, Some(ctx));
        // the parent link deliberately does not survive the wire: to
        // the receiver, this span IS the remote parent
        let with_parent = TraceContext { parent: Some(7), ..ctx };
        prop_assert_eq!(with_parent.encode(), wire);
    }

    #[test]
    fn mangled_traceparents_are_rejected_not_misparsed(
        trace in trace_ids(),
        span in span_ids(),
        mangle in 0u8..6,
    ) {
        let wire = TraceContext { trace_id: trace, span_id: span, parent: None }.encode();
        let bad = match mangle {
            // truncated
            0 => wire[..wire.len() - 1].to_string(),
            // trailing garbage
            1 => format!("{wire}0"),
            // uppercase hex is out of schema (the encoding is canonical)
            2 => wire.to_uppercase(),
            // wrong version prefix
            3 => format!("01{}", &wire[2..]),
            // zero trace id
            4 => format!("00-{:032x}-{:016x}-01", 0u128, span),
            // zero span id
            _ => format!("00-{:032x}-{:016x}-01", trace, 0u64),
        };
        if bad != wire {
            prop_assert_eq!(TraceContext::parse(&bad), None, "accepted {}", bad);
        }
    }

    #[test]
    fn child_span_derivation_is_bitwise_reproducible(parent in span_ids(), seq in 0u64..1_000_000) {
        // same inputs, same id — across calls and (by purity) across
        // processes and thread counts
        prop_assert_eq!(derive_child(parent, seq), derive_child(parent, seq));
        // adjacent logical-clock positions never collide under one parent
        prop_assert_ne!(derive_child(parent, seq), derive_child(parent, seq + 1));
        // derived ids are valid span ids (nonzero), so every child can
        // itself be encoded on the wire
        prop_assert_ne!(derive_child(parent, seq), 0);
    }

    #[test]
    fn sibling_spans_get_distinct_ids(parent in span_ids(), base in 0u64..1_000_000) {
        let ids: Vec<u64> = (0..64).map(|i| derive_child(parent, base + i)).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), ids.len(), "collision among 64 siblings of {}", parent);
    }

    #[test]
    fn trace_id_derivation_is_a_pure_function_of_label_and_seed(seed in 0u64..u64::MAX) {
        let id = derive_trace_id("sweep", seed);
        prop_assert_eq!(id, derive_trace_id("sweep", seed), "resume must regrow the id");
        // derived trace ids must be nonzero to stay encodable
        prop_assert_ne!(id, 0);
        // different campaigns (label or seed) get different traces
        prop_assert_ne!(id, derive_trace_id("serve", seed));
        prop_assert_ne!(id, derive_trace_id("sweep", seed.wrapping_add(1)));
        // and the synthetic root parent is stable and nonzero too
        prop_assert_eq!(root_parent(id), root_parent(id));
        prop_assert_ne!(root_parent(id), 0);
    }
}
