//! Property-based tests for the observatory's structural invariants:
//! self-cost attribution telescopes, collapsed flamegraph stacks round-trip
//! to the tree's totals, a trace always diffs clean against itself, and
//! the campaign collector assembles a single-rooted, telescoping tree
//! whatever mix of torn, missing, and healthy per-process traces it is
//! handed.

use proptest::prelude::*;
use simpadv_obs::{
    assemble, attribute, build_tree, collapse, diff, normalize, parse_collapsed, prefix_totals,
    render_collapsed, CostVector, DiffOptions, FlameWeight, SpanNode,
};
use simpadv_trace::{Event, EventKind, FieldValue, TraceContext};

const NAMES: &[&str] = &["train", "epoch", "attack", "eval", "checkpoint"];

fn close_fields(own: &CostVector) -> Vec<(String, FieldValue)> {
    vec![
        ("forward".to_string(), FieldValue::U64(own.forward)),
        ("backward".to_string(), FieldValue::U64(own.backward)),
        ("flops".to_string(), FieldValue::U64(own.flops)),
        ("attack_steps".to_string(), FieldValue::U64(own.attack_steps)),
    ]
}

/// Interprets a byte string as open/close commands, producing a balanced
/// event stream whose close totals are coherent (every parent's total is
/// its children's totals plus its own contribution, exactly as the real
/// tracer's delta counters behave).
fn build_events(cmds: &[u8]) -> Vec<Event> {
    let mut events = Vec::new();
    // (path, accumulated cost of already-closed children)
    let mut stack: Vec<(String, CostVector)> = Vec::new();
    let mut seq = 0u64;
    let close_top =
        |stack: &mut Vec<(String, CostVector)>, events: &mut Vec<Event>, seq: &mut u64, b: u8| {
            let Some((path, children)) = stack.pop() else { return };
            let own = CostVector {
                wall_us: u64::from(b) * 10 + 1,
                forward: u64::from(b % 7),
                backward: u64::from(b % 5),
                flops: u64::from(b) * 3,
                attack_steps: u64::from(b % 3),
            };
            let mut total = children;
            total.add(&own);
            events.push(Event {
                seq: *seq,
                kind: EventKind::SpanClose,
                path: path.clone(),
                fields: close_fields(&total),
                meta: vec![("wall_us".to_string(), FieldValue::U64(total.wall_us))],
                ctx: None,
            });
            *seq += 1;
            if let Some((_, parent_children)) = stack.last_mut() {
                parent_children.add(&total);
            }
        };
    for &b in cmds {
        if b % 4 < 2 && stack.len() < 4 {
            let name = NAMES[usize::from(b / 4) % NAMES.len()];
            let path = match stack.last() {
                Some((p, _)) => format!("{p}/{name}"),
                None => name.to_string(),
            };
            events.push(Event {
                seq,
                kind: EventKind::SpanOpen,
                path: path.clone(),
                fields: Vec::new(),
                meta: Vec::new(),
                ctx: None,
            });
            seq += 1;
            stack.push((path, CostVector::default()));
        } else {
            close_top(&mut stack, &mut events, &mut seq, b);
        }
    }
    while !stack.is_empty() {
        close_top(&mut stack, &mut events, &mut seq, 9);
    }
    events
}

fn commands() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..255, 1..48)
}

proptest! {
    #[test]
    fn self_cost_telescopes_to_total_minus_children(cmds in commands()) {
        let events = build_events(&cmds);
        if events.is_empty() {
            return Ok(());
        }
        let tree = build_tree(&events).expect("constructed balanced");
        let mut holds = true;
        tree.walk(&mut |node| {
            let mut children = CostVector::default();
            for c in &node.children {
                children.add(&c.total);
            }
            let mut back = node.self_cost();
            back.add(&children);
            // coherent construction means no saturation: self + children == total
            holds &= back == node.total;
        });
        prop_assert!(holds);
    }

    #[test]
    fn collapsed_stacks_parse_back_to_the_trees_weights(cmds in commands()) {
        let events = build_events(&cmds);
        if events.is_empty() {
            return Ok(());
        }
        let tree = build_tree(&events).expect("constructed balanced");
        let folded = render_collapsed(&collapse(&tree, FlameWeight::Wall));
        let totals = prefix_totals(&parse_collapsed(&folded).expect("own output parses"));
        for (path, stat) in attribute(&tree) {
            let frames = path.replace('/', ";");
            prop_assert_eq!(totals.get(&frames).copied(), Some(stat.total.wall_us));
        }
    }

    #[test]
    fn diff_against_self_is_always_empty(cmds in commands()) {
        let events = build_events(&cmds);
        let report = diff(&events, &events, &DiffOptions::default());
        prop_assert!(report.logically_identical());
        prop_assert!(report.wall_warnings.is_empty());
        prop_assert_eq!(report.events_a, events.len());
    }
}

/// How one generated cell's trace file ends up on disk.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Fate {
    /// Balanced, complete trace.
    Healthy,
    /// Complete trace plus a torn half-written final line (writer
    /// killed mid-write) — the collector salvages it.
    Torn,
    /// The file never appeared: the child died before its first flush —
    /// the collector marks the attempt an orphan.
    Missing,
    /// The train span never closed: the process died with it open — the
    /// collector auto-closes it as crashed.
    Crashed,
}

fn fate_of(b: u8) -> Fate {
    match b % 4 {
        0 => Fate::Healthy,
        1 => Fate::Torn,
        2 => Fate::Missing,
        _ => Fate::Crashed,
    }
}

/// Builds a campaign trace directory as `(file name, content)` pairs:
/// one orchestrator trace plus one anchored cell trace per fate byte
/// (except `Missing`, which is anchored but never written).
fn campaign_inputs(fates: &[u8]) -> Vec<(String, String)> {
    let cx =
        |span: u64, parent: Option<u64>| Some(TraceContext { trace_id: 42, span_id: span, parent });
    let u = |k: &str, v: u64| (k.to_string(), FieldValue::U64(v));
    let s = |k: &str, v: &str| (k.to_string(), FieldValue::Str(v.to_string()));
    let ev = |seq: u64,
              kind: EventKind,
              path: &str,
              fields: Vec<(String, FieldValue)>,
              wall: u64,
              ctx: Option<TraceContext>| {
        let meta = if kind == EventKind::SpanClose {
            vec![("wall_us".to_string(), FieldValue::U64(wall))]
        } else {
            Vec::new()
        };
        Event { seq, kind, path: path.to_string(), fields, meta, ctx }.to_json_line()
    };
    let mut inputs = Vec::new();
    let mut orch = Vec::new();
    let mut seq = 0u64;
    orch.push(ev(
        seq,
        EventKind::SpanOpen,
        "sweep",
        vec![u("cells", fates.len() as u64)],
        0,
        cx(1, None),
    ));
    seq += 1;
    for (i, &b) in fates.iter().enumerate() {
        let fate = fate_of(b);
        let epochs = u64::from(b / 4) % 3 + 1;
        let cell_span = 10 + (i as u64) * 10;
        let attempt_span = cell_span + 1;
        let name = format!("c{i:03}.attempt001.jsonl");
        orch.push(ev(
            seq,
            EventKind::SpanOpen,
            "sweep/sweep/cell",
            vec![u("index", i as u64)],
            0,
            cx(cell_span, Some(1)),
        ));
        seq += 1;
        orch.push(ev(
            seq,
            EventKind::SpanOpen,
            "sweep/sweep/cell/sweep/attempt",
            vec![u("n", 1), s("trace_file", &name)],
            0,
            cx(attempt_span, Some(cell_span)),
        ));
        seq += 1;
        orch.push(ev(seq, EventKind::SpanClose, "sweep/sweep/cell/sweep/attempt", vec![], 5, None));
        seq += 1;
        orch.push(ev(seq, EventKind::SpanClose, "sweep/sweep/cell", vec![], 6, None));
        seq += 1;

        if fate == Fate::Missing {
            continue;
        }
        let mut cell = Vec::new();
        let mut cseq = 0u64;
        cell.push(ev(
            cseq,
            EventKind::SpanOpen,
            "train",
            vec![s("trainer", "vanilla")],
            0,
            cx(1000 + (i as u64) * 100, Some(attempt_span)),
        ));
        cseq += 1;
        for e in 0..epochs {
            cell.push(ev(
                cseq,
                EventKind::SpanOpen,
                "train/epoch",
                vec![u("index", e)],
                0,
                cx(1000 + (i as u64) * 100 + 1 + e, Some(1000 + (i as u64) * 100)),
            ));
            cseq += 1;
            cell.push(ev(
                cseq,
                EventKind::SpanClose,
                "train/epoch",
                vec![u("forward", 2), u("flops", 20)],
                10,
                None,
            ));
            cseq += 1;
        }
        if fate != Fate::Crashed {
            cell.push(ev(
                cseq,
                EventKind::SpanClose,
                "train",
                vec![u("forward", 2 * epochs), u("flops", 20 * epochs)],
                10 * epochs + 2,
                None,
            ));
        }
        let mut text = cell.join("\n");
        if fate == Fate::Torn {
            text.push_str("\n{\"seq\":99,\"ki");
        }
        inputs.push((name, text));
    }
    orch.push(ev(seq, EventKind::SpanClose, "sweep", vec![], 100, None));
    inputs.push(("orchestrator.001.jsonl".to_string(), orch.join("\n")));
    inputs
}

/// Parent ≥ Σ children, elementwise, down the whole subtree.
fn telescopes(node: &SpanNode) -> bool {
    let mut sum = CostVector::default();
    for c in &node.children {
        sum.add(&c.total);
    }
    node.total.wall_us >= sum.wall_us
        && node.total.forward >= sum.forward
        && node.total.backward >= sum.backward
        && node.total.flops >= sum.flops
        && node.total.attack_steps >= sum.attack_steps
        && node.children.iter().all(telescopes)
}

fn count_named(node: &SpanNode, name: &str) -> usize {
    usize::from(node.name == name)
        + node.children.iter().map(|c| count_named(c, name)).sum::<usize>()
}

fn fate_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..255, 1..6)
}

proptest! {
    #[test]
    fn assembled_campaigns_are_single_rooted_and_telescope(fates in fate_bytes()) {
        let inputs = campaign_inputs(&fates);
        let assembly = assemble(&inputs).expect("assembles");
        let tree = build_tree(&assembly.events).expect("balanced assembly");
        // one synthetic campaign root, one cell subtree per grid cell
        prop_assert_eq!(tree.roots.len(), 1);
        let root = &tree.roots[0];
        prop_assert_eq!(root.name.as_str(), "campaign");
        prop_assert_eq!(count_named(root, "sweep/cell"), fates.len());
        prop_assert_eq!(count_named(root, "sweep/attempt"), fates.len());
        // grafting moves cost between processes but never breaks
        // parent >= sum(children)
        prop_assert!(telescopes(root), "telescoping violated for {:?}", fates);
    }

    #[test]
    fn every_fate_lands_in_the_right_assembly_bucket(fates in fate_bytes()) {
        let inputs = campaign_inputs(&fates);
        let assembly = assemble(&inputs).expect("assembles");
        let tree = build_tree(&assembly.events).expect("balanced assembly");
        let missing: Vec<String> = fates.iter().enumerate()
            .filter(|(_, b)| fate_of(**b) == Fate::Missing)
            .map(|(i, _)| format!("c{i:03}.attempt001.jsonl"))
            .collect();
        let torn: Vec<String> = fates.iter().enumerate()
            .filter(|(_, b)| fate_of(**b) == Fate::Torn)
            .map(|(i, _)| format!("c{i:03}.attempt001.jsonl"))
            .collect();
        let crashed = fates.iter().filter(|b| fate_of(**b) == Fate::Crashed).count();
        prop_assert_eq!(&assembly.orphans, &missing);
        prop_assert_eq!(&assembly.salvaged, &torn);
        // every died-before-flush attempt is an explicit orphan node
        prop_assert_eq!(count_named(&tree.roots[0], "orphan"), missing.len());
        // every died-mid-span process is one crashed train span
        prop_assert_eq!(assembly.crashed_spans as usize, crashed);
    }

    #[test]
    fn assembly_is_invariant_under_input_order(fates in fate_bytes()) {
        let mut inputs = campaign_inputs(&fates);
        let forward = assemble(&inputs).expect("assembles");
        inputs.reverse();
        let backward = assemble(&inputs).expect("assembles");
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn normalized_campaigns_are_balanced_and_purely_logical(fates in fate_bytes()) {
        let assembly = assemble(&campaign_inputs(&fates)).expect("assembles");
        let logical = normalize(&assembly.events).expect("normalizes");
        build_tree(&logical).expect("normalized stream is balanced");
        for event in &logical {
            prop_assert!(event.meta.is_empty(), "meta must be stripped: {:?}", event);
            prop_assert!(event.ctx.is_none(), "ctx must be stripped: {:?}", event);
        }
    }
}
