//! Property-based tests for the observatory's structural invariants:
//! self-cost attribution telescopes, collapsed flamegraph stacks round-trip
//! to the tree's totals, and a trace always diffs clean against itself.

use proptest::prelude::*;
use simpadv_obs::{
    attribute, build_tree, collapse, diff, parse_collapsed, prefix_totals, render_collapsed,
    CostVector, DiffOptions, FlameWeight,
};
use simpadv_trace::{Event, EventKind, FieldValue};

const NAMES: &[&str] = &["train", "epoch", "attack", "eval", "checkpoint"];

fn close_fields(own: &CostVector) -> Vec<(String, FieldValue)> {
    vec![
        ("forward".to_string(), FieldValue::U64(own.forward)),
        ("backward".to_string(), FieldValue::U64(own.backward)),
        ("flops".to_string(), FieldValue::U64(own.flops)),
        ("attack_steps".to_string(), FieldValue::U64(own.attack_steps)),
    ]
}

/// Interprets a byte string as open/close commands, producing a balanced
/// event stream whose close totals are coherent (every parent's total is
/// its children's totals plus its own contribution, exactly as the real
/// tracer's delta counters behave).
fn build_events(cmds: &[u8]) -> Vec<Event> {
    let mut events = Vec::new();
    // (path, accumulated cost of already-closed children)
    let mut stack: Vec<(String, CostVector)> = Vec::new();
    let mut seq = 0u64;
    let close_top =
        |stack: &mut Vec<(String, CostVector)>, events: &mut Vec<Event>, seq: &mut u64, b: u8| {
            let Some((path, children)) = stack.pop() else { return };
            let own = CostVector {
                wall_us: u64::from(b) * 10 + 1,
                forward: u64::from(b % 7),
                backward: u64::from(b % 5),
                flops: u64::from(b) * 3,
                attack_steps: u64::from(b % 3),
            };
            let mut total = children;
            total.add(&own);
            events.push(Event {
                seq: *seq,
                kind: EventKind::SpanClose,
                path: path.clone(),
                fields: close_fields(&total),
                meta: vec![("wall_us".to_string(), FieldValue::U64(total.wall_us))],
            });
            *seq += 1;
            if let Some((_, parent_children)) = stack.last_mut() {
                parent_children.add(&total);
            }
        };
    for &b in cmds {
        if b % 4 < 2 && stack.len() < 4 {
            let name = NAMES[usize::from(b / 4) % NAMES.len()];
            let path = match stack.last() {
                Some((p, _)) => format!("{p}/{name}"),
                None => name.to_string(),
            };
            events.push(Event {
                seq,
                kind: EventKind::SpanOpen,
                path: path.clone(),
                fields: Vec::new(),
                meta: Vec::new(),
            });
            seq += 1;
            stack.push((path, CostVector::default()));
        } else {
            close_top(&mut stack, &mut events, &mut seq, b);
        }
    }
    while !stack.is_empty() {
        close_top(&mut stack, &mut events, &mut seq, 9);
    }
    events
}

fn commands() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..255, 1..48)
}

proptest! {
    #[test]
    fn self_cost_telescopes_to_total_minus_children(cmds in commands()) {
        let events = build_events(&cmds);
        if events.is_empty() {
            return Ok(());
        }
        let tree = build_tree(&events).expect("constructed balanced");
        let mut holds = true;
        tree.walk(&mut |node| {
            let mut children = CostVector::default();
            for c in &node.children {
                children.add(&c.total);
            }
            let mut back = node.self_cost();
            back.add(&children);
            // coherent construction means no saturation: self + children == total
            holds &= back == node.total;
        });
        prop_assert!(holds);
    }

    #[test]
    fn collapsed_stacks_parse_back_to_the_trees_weights(cmds in commands()) {
        let events = build_events(&cmds);
        if events.is_empty() {
            return Ok(());
        }
        let tree = build_tree(&events).expect("constructed balanced");
        let folded = render_collapsed(&collapse(&tree, FlameWeight::Wall));
        let totals = prefix_totals(&parse_collapsed(&folded).expect("own output parses"));
        for (path, stat) in attribute(&tree) {
            let frames = path.replace('/', ";");
            prop_assert_eq!(totals.get(&frames).copied(), Some(stat.total.wall_us));
        }
    }

    #[test]
    fn diff_against_self_is_always_empty(cmds in commands()) {
        let events = build_events(&cmds);
        let report = diff(&events, &events, &DiffOptions::default());
        prop_assert!(report.logically_identical());
        prop_assert!(report.wall_warnings.is_empty());
        prop_assert_eq!(report.events_a, events.len());
    }
}
