//! `BENCH_serve.json`: the serving-path benchmark artifact.
//!
//! Same philosophy as the training baseline ([`crate::baseline`]):
//! everything in the top-level sections is LOGICAL — a pure function of
//! the model, the request schedule, and the seeds, so it must reproduce
//! bit-for-bit on any machine at any `--threads`. Everything
//! wall-clock-dependent (throughput, latency percentiles, realized
//! batch occupancy, backpressure rejections) is quarantined in `meta`,
//! where [`compare_serve`] only warns, never fails.

use crate::baseline::{CompareReport, WALL_NOTE};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Schema version for [`ServeArtifact`]; bump on breaking change.
pub const SERVE_SCHEMA_VERSION: u64 = 1;

/// The experiment tag distinguishing serve artifacts from training
/// baselines when `bench compare` dispatches on file contents.
pub const SERVE_EXPERIMENT: &str = "serve";

/// Load-generator scale: fully determined by CLI flags + seed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeScale {
    /// Total requests submitted.
    pub requests: u64,
    /// Closed-loop client count.
    pub clients: u64,
    /// Distinct inputs in the request pool.
    pub samples: u64,
    /// Adversarial traffic fraction, in permille (100 = 10%).
    pub adv_permille: u64,
    /// Attack used for the adversarial fraction (`pgd` or `bim`).
    pub attack: String,
    /// Largest coalesced batch the server was configured for.
    pub batch_max: u64,
    /// Bounded queue capacity.
    pub queue_cap: u64,
    /// Seed for the request pool and attack crafting.
    pub seed: u64,
}

/// Per-(generation, traffic-class) accuracy counters — logical as long
/// as no hot swap happens mid-run (the load generator serves a fixed
/// generation set).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeGenerationRow {
    /// Checkpoint generation that answered.
    pub generation: u64,
    /// `"clean"` or `"adversarial"`.
    pub traffic: String,
    /// Requests answered in this cell.
    pub requests: u64,
    /// Requests carrying a ground-truth label.
    pub labeled: u64,
    /// Correct predictions among the labeled ones.
    pub correct: u64,
}

/// Wall-clock section: machine-dependent, compare warns only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeMeta {
    /// Worker threads the runtime pool used.
    pub threads: u64,
    /// Total wall time of the load phase, seconds.
    pub wall_total_s: f64,
    /// Answered requests per second.
    pub throughput_rps: f64,
    /// Latency percentiles in microseconds: p50, p90, p99, max.
    pub latency_p50_us: u64,
    /// 90th percentile latency, microseconds.
    pub latency_p90_us: u64,
    /// 99th percentile latency, microseconds.
    pub latency_p99_us: u64,
    /// Worst observed latency, microseconds.
    pub latency_max_us: u64,
    /// Mean realized batch occupancy (timing-dependent coalescing).
    pub batch_occupancy_mean: f64,
    /// Largest realized batch.
    pub batch_occupancy_max: u64,
    /// Requests shed by backpressure (timing-dependent).
    pub rejected: u64,
    /// Standing note about wall-number portability.
    pub note: String,
}

/// The serving benchmark artifact written by `bench serve`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeArtifact {
    /// Always [`SERVE_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Always [`SERVE_EXPERIMENT`].
    pub experiment: String,
    /// Load shape (logical).
    pub scale: ServeScale,
    /// Requests answered (logical: rejections are impossible when
    /// `queue_cap >= clients` in a closed loop).
    pub served: u64,
    /// Generations skipped as unreadable (logical: 0 in a healthy run).
    pub skipped_generations: u64,
    /// Per-generation clean-vs-adversarial accuracy (logical).
    pub generations: Vec<ServeGenerationRow>,
    /// Machine-dependent numbers, quarantined.
    pub meta: ServeMeta,
}

impl ServeArtifact {
    /// The standing wall-number caveat, for the `meta.note` field.
    pub fn wall_note() -> String {
        WALL_NOTE.to_string()
    }
}

/// Compares two serve artifacts: logical sections must match exactly;
/// wall drift only warns.
///
/// Fails on: schema/experiment/scale mismatch, served/skipped counts,
/// any per-(generation, traffic) row differing or missing. Warns on:
/// throughput changing by more than 2x either way, nonzero rejections
/// in the candidate.
pub fn compare_serve(baseline: &ServeArtifact, candidate: &ServeArtifact) -> CompareReport {
    let mut report = CompareReport::default();
    let reg = &mut report.regressions;
    if baseline.schema_version != candidate.schema_version {
        reg.push(format!(
            "schema version {} vs {}",
            baseline.schema_version, candidate.schema_version
        ));
    }
    if baseline.experiment != candidate.experiment {
        reg.push(format!("experiment '{}' vs '{}'", baseline.experiment, candidate.experiment));
    }
    if baseline.scale != candidate.scale {
        reg.push(format!("scale {:?} vs {:?}", baseline.scale, candidate.scale));
    }
    if baseline.served != candidate.served {
        reg.push(format!("served {} vs {}", baseline.served, candidate.served));
    }
    if baseline.skipped_generations != candidate.skipped_generations {
        reg.push(format!(
            "skipped generations {} vs {}",
            baseline.skipped_generations, candidate.skipped_generations
        ));
    }

    let key = |row: &ServeGenerationRow| (row.generation, row.traffic.clone());
    let cand_rows: BTreeMap<(u64, String), &ServeGenerationRow> =
        candidate.generations.iter().map(|r| (key(r), r)).collect();
    for base in &baseline.generations {
        match cand_rows.get(&key(base)) {
            None => reg.push(format!(
                "generation {} {} traffic missing from candidate",
                base.generation, base.traffic
            )),
            Some(cand) => {
                if (base.requests, base.labeled, base.correct)
                    != (cand.requests, cand.labeled, cand.correct)
                {
                    reg.push(format!(
                        "generation {} {}: {}/{}/{} vs {}/{}/{} (requests/labeled/correct)",
                        base.generation,
                        base.traffic,
                        base.requests,
                        base.labeled,
                        base.correct,
                        cand.requests,
                        cand.labeled,
                        cand.correct
                    ));
                }
            }
        }
    }
    for cand in &candidate.generations {
        if !baseline.generations.iter().any(|b| key(b) == key(cand)) {
            reg.push(format!(
                "generation {} {} traffic absent from baseline",
                cand.generation, cand.traffic
            ));
        }
    }

    let (base_rps, cand_rps) = (baseline.meta.throughput_rps, candidate.meta.throughput_rps);
    if base_rps > 0.0 && cand_rps > 0.0 {
        let ratio = cand_rps / base_rps;
        if !(0.5..=2.0).contains(&ratio) {
            report.warnings.push(format!(
                "throughput {base_rps:.1} -> {cand_rps:.1} rps ({ratio:.2}x); \
                 wall numbers are advisory"
            ));
        }
    }
    if candidate.meta.rejected > 0 {
        report
            .warnings
            .push(format!("candidate shed {} requests to backpressure", candidate.meta.rejected));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact() -> ServeArtifact {
        ServeArtifact {
            schema_version: SERVE_SCHEMA_VERSION,
            experiment: SERVE_EXPERIMENT.to_string(),
            scale: ServeScale {
                requests: 100,
                clients: 4,
                samples: 50,
                adv_permille: 100,
                attack: "pgd".to_string(),
                batch_max: 16,
                queue_cap: 64,
                seed: 2019,
            },
            served: 100,
            skipped_generations: 0,
            generations: vec![
                ServeGenerationRow {
                    generation: 1,
                    traffic: "clean".to_string(),
                    requests: 90,
                    labeled: 90,
                    correct: 81,
                },
                ServeGenerationRow {
                    generation: 1,
                    traffic: "adversarial".to_string(),
                    requests: 10,
                    labeled: 10,
                    correct: 6,
                },
            ],
            meta: ServeMeta {
                threads: 1,
                wall_total_s: 1.5,
                throughput_rps: 66.7,
                latency_p50_us: 900,
                latency_p90_us: 2_000,
                latency_p99_us: 5_000,
                latency_max_us: 9_000,
                batch_occupancy_mean: 3.5,
                batch_occupancy_max: 8,
                rejected: 0,
                note: ServeArtifact::wall_note(),
            },
        }
    }

    #[test]
    fn identical_artifacts_pass_cleanly() {
        let a = artifact();
        let report = compare_serve(&a, &a);
        assert!(report.passed(), "{:?}", report.regressions);
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn accuracy_drift_is_a_regression() {
        let base = artifact();
        let mut cand = artifact();
        cand.generations[1].correct = 2;
        let report = compare_serve(&base, &cand);
        assert!(!report.passed());
        assert!(
            report.regressions.iter().any(|r| r.contains("adversarial")),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn wall_drift_only_warns() {
        let base = artifact();
        let mut cand = artifact();
        cand.meta.throughput_rps = 10.0;
        cand.meta.latency_p99_us = 500_000;
        let report = compare_serve(&base, &cand);
        assert!(report.passed(), "{:?}", report.regressions);
        assert!(report.warnings.iter().any(|w| w.contains("throughput")), "{:?}", report.warnings);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let a = artifact();
        let text = serde_json::to_string_pretty(&a).unwrap();
        let back: ServeArtifact = serde_json::from_str(&text).unwrap();
        assert_eq!(a, back);
    }
}
