//! Strict JSONL trace loading with truncation-aware errors.

use crate::error::ObsError;
use simpadv_trace::Event;

/// Parses a JSONL trace into events.
///
/// Blank lines are permitted and skipped. Parsing is schema-strict (the
/// [`Event`] deserializer rejects unknown keys), and the error is typed
/// by position: an invalid *final* line is reported as
/// [`ObsError::TruncatedTail`] — the normal aftermath of a writer killed
/// mid-line — while an invalid interior line is [`ObsError::Parse`].
///
/// An empty file parses to an empty event list; deciding whether that is
/// an error is left to the analysis (e.g. [`crate::tree::build_tree`]).
///
/// # Errors
///
/// Returns [`ObsError::Parse`] or [`ObsError::TruncatedTail`] on the
/// first invalid line.
pub fn read_events(text: &str) -> Result<Vec<Event>, ObsError> {
    let lines: Vec<(usize, &str)> =
        text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty()).collect();
    let last = lines.last().map(|(i, _)| *i);
    let mut events = Vec::with_capacity(lines.len());
    for (i, line) in lines {
        match serde_json::from_str::<Event>(line) {
            Ok(ev) => events.push(ev),
            Err(e) => {
                let (line, message) = (i + 1, e.to_string());
                return Err(if Some(i) == last {
                    ObsError::TruncatedTail { line, message }
                } else {
                    ObsError::Parse { line, message }
                });
            }
        }
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpadv_trace::EventKind;

    fn line(seq: u64, kind: EventKind, path: &str) -> String {
        Event { seq, kind, path: path.into(), fields: Vec::new(), meta: Vec::new(), ctx: None }
            .to_json_line()
    }

    #[test]
    fn parses_a_valid_trace_and_skips_blanks() {
        let text = format!(
            "\n{}\n\n{}\n",
            line(0, EventKind::SpanOpen, "a"),
            line(1, EventKind::SpanClose, "a")
        );
        let events = read_events(&text).expect("valid");
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].path, "a");
    }

    #[test]
    fn empty_input_is_ok_and_empty() {
        assert_eq!(read_events("").expect("empty is fine"), Vec::new());
        assert_eq!(read_events("\n\n").expect("blank is fine"), Vec::new());
    }

    #[test]
    fn invalid_final_line_is_truncated_tail() {
        let text = format!("{}\n{{\"seq\":1,\"kind\":\"span_cl", line(0, EventKind::SpanOpen, "a"));
        match read_events(&text) {
            Err(ObsError::TruncatedTail { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected TruncatedTail, got {other:?}"),
        }
    }

    #[test]
    fn invalid_interior_line_is_a_parse_error() {
        let text = format!(
            "{}\nnot json\n{}\n",
            line(0, EventKind::SpanOpen, "a"),
            line(2, EventKind::SpanClose, "a")
        );
        match read_events(&text) {
            Err(ObsError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let text = r#"{"seq":0,"kind":"gauge","path":"p","fields":{},"meta":{},"extra":1}"#;
        assert!(matches!(read_events(text), Err(ObsError::TruncatedTail { .. })));
    }
}
