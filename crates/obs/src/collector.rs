//! Cross-process trace collection: stitching one campaign's per-process
//! JSONL traces into a single rooted span tree.
//!
//! A traced campaign leaves a directory of trace files behind: one or
//! more orchestrator traces (a chaos-interrupted campaign resumes into a
//! fresh file) plus one file per cell *attempt*, written by the child
//! process the supervisor spawned. The files are linked by trace
//! context: every `sweep/attempt` span names its child's trace file in a
//! `trace_file` field, and the child's top-level spans carry the attempt
//! span's id as their remote parent (propagated via
//! `SIMPADV_TRACEPARENT`).
//!
//! [`assemble`] rebuilds the campaign tree from those links:
//!
//! * **Lenient parsing.** A cell SIGKILLed mid-write leaves a torn final
//!   line; the collector drops it and records the salvage instead of
//!   failing the whole assembly. Spans left open by a killed process are
//!   auto-closed and marked `crashed = true` on their open event.
//! * **Stitching.** A file named by some span's `trace_file` field is
//!   grafted under that span — the unambiguous link, immune to span-id
//!   collisions between orchestrator incarnations. Remaining file roots
//!   with a remote parent (`ctx.parent`) are grafted under the span
//!   carrying that id. Nodes whose `ctx.parent` disagrees with their
//!   in-file parent (a serve request answered for a remote client) are
//!   re-parented under the span they name.
//! * **Orphans.** An attempt whose named trace file contributed no
//!   events — the child died before its first flush — gets an explicit
//!   synthetic `orphan` child (`synthetic = true`) so the gap is visible
//!   in the tree rather than silent.
//! * **Cost re-rollup.** Grafting moves cost between processes, so close
//!   totals are adjusted: a span gains its grafted children's totals and
//!   sheds moved-away ones, keeping parent ≥ Σ children telescoping for
//!   the flamegraph and hot-spot machinery.
//!
//! The output is a renumbered, balanced event stream under one synthetic
//! `campaign` root — directly consumable by [`crate::tree::build_tree`],
//! [`crate::diff::diff`], and [`crate::flame::collapse`].
//!
//! [`normalize`] is the logical projection on top: it merges retry
//! attempts (epochs deduped by index keeping the last complete run,
//! checkpoint spans dropped, crashed spans dropped), strips meta and
//! trace ids, and renumbers — so an interrupted-and-resumed campaign
//! projects to byte-identical events as an uninterrupted one, at any
//! worker thread count. That identity is the cross-process extension of
//! the single-process determinism the `trace diff` gate already
//! enforces.

use crate::error::ObsError;
use crate::reader::read_events;
use crate::tree::{build_tree, CostVector, SpanNode};
use simpadv_trace::{Event, EventKind, FieldValue, TraceContext};
use std::collections::BTreeMap;

/// An event's `fields` or `meta` list, in emission order.
type FieldList = Vec<(String, FieldValue)>;

/// Marker field on auto-closed spans whose process died mid-span.
pub const CRASHED_FIELD: &str = "crashed";
/// Marker field on nodes the collector invented (campaign root, orphan
/// placeholders) rather than observed.
pub const SYNTHETIC_FIELD: &str = "synthetic";
/// Field on attempt spans naming the child's trace file — the stitching
/// anchor and the orphan detector.
pub const TRACE_FILE_FIELD: &str = "trace_file";
/// Name of the synthetic root wrapping the whole assembled campaign.
pub const CAMPAIGN_ROOT: &str = "campaign";
/// Name of the synthetic child marking an attempt with no events.
pub const ORPHAN_NAME: &str = "orphan";

/// The result of stitching one campaign directory.
#[derive(Debug, Clone, PartialEq)]
pub struct Assembly {
    /// The assembled, renumbered, balanced event stream: one synthetic
    /// `campaign` root span wrapping every process's spans.
    pub events: Vec<Event>,
    /// File names consumed, in the (sorted) order they were processed.
    pub files: Vec<String>,
    /// Trace files named by an attempt span that contributed no events:
    /// children killed before their first flush. Each is also a
    /// synthetic `orphan` node in the tree.
    pub orphans: Vec<String>,
    /// Files whose torn final line was dropped (writer killed
    /// mid-write).
    pub salvaged: Vec<String>,
    /// Spans auto-closed because their process died while they were
    /// open.
    pub crashed_spans: u64,
    /// Counter/gauge/histogram events dropped (the campaign tree is a
    /// span tree; point events stay in the per-process files).
    pub point_events: u64,
}

/// One stitched span in the working arena. Children are arena indices
/// so grafting and re-parenting are index moves, not tree surgery.
struct ANode {
    /// Leaf name relative to the parent (may contain `/`, like
    /// `checkpoint/save`).
    name: String,
    open_fields: Vec<(String, FieldValue)>,
    close_fields: Vec<(String, FieldValue)>,
    close_meta: Vec<(String, FieldValue)>,
    ctx: Option<TraceContext>,
    /// No close event was observed: the process died with it open.
    crashed: bool,
    /// Invented by the collector, not observed in any file.
    synthetic: bool,
    /// `(child index, grafted)` — grafted children arrived from another
    /// file and are added to this span's totals on emission.
    children: Vec<(usize, bool)>,
    /// Observed totals of children re-parented away, subtracted from
    /// this span's totals on emission.
    moved_out: Vec<CostVector>,
    /// Which input file the node came from (`usize::MAX` = synthetic).
    file: usize,
}

impl ANode {
    fn synthetic(name: &str, open_fields: Vec<(String, FieldValue)>) -> ANode {
        ANode {
            name: name.to_string(),
            open_fields,
            close_fields: Vec::new(),
            close_meta: Vec::new(),
            ctx: None,
            crashed: false,
            synthetic: true,
            children: Vec::new(),
            moved_out: Vec::new(),
            file: usize::MAX,
        }
    }

    /// The cost this span's own close event claimed (zero when the
    /// close was never written).
    fn observed_total(&self) -> CostVector {
        if self.crashed || self.synthetic {
            return CostVector::default();
        }
        CostVector {
            wall_us: field_u64(&self.close_meta, "wall_us"),
            forward: field_u64(&self.close_fields, "forward"),
            backward: field_u64(&self.close_fields, "backward"),
            flops: field_u64(&self.close_fields, "flops"),
            attack_steps: field_u64(&self.close_fields, "attack_steps"),
        }
    }
}

fn field_u64(pairs: &[(String, FieldValue)], key: &str) -> u64 {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            FieldValue::U64(n) => Some(*n),
            _ => None,
        })
        .unwrap_or(0)
}

fn field_str<'a>(pairs: &'a [(String, FieldValue)], key: &str) -> Option<&'a str> {
    pairs.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
        FieldValue::Str(s) => Some(s.as_str()),
        _ => None,
    })
}

fn field_bool(pairs: &[(String, FieldValue)], key: &str) -> bool {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| matches!(v, FieldValue::Bool(true)))
        .unwrap_or(false)
}

/// Parses one file's text leniently: a torn final line is dropped (and
/// reported), spans still open at EOF are auto-closed as crashed.
/// Returns the root indices this file contributed to the arena.
fn parse_file_lenient(
    name: &str,
    text: &str,
    file_idx: usize,
    arena: &mut Vec<ANode>,
    salvaged: &mut Vec<String>,
    crashed_spans: &mut u64,
    point_events: &mut u64,
) -> Result<Vec<usize>, ObsError> {
    let events = match read_events(text) {
        Ok(events) => events,
        Err(ObsError::TruncatedTail { .. }) => {
            // The signature of a writer killed mid-line: drop the tail,
            // keep everything before it.
            let kept: Vec<&str> = {
                let lines: Vec<&str> = text.lines().collect();
                let last_nonblank = lines.iter().rposition(|l| !l.trim().is_empty()).unwrap_or(0);
                lines[..last_nonblank].to_vec()
            };
            salvaged.push(name.to_string());
            read_events(&kept.join("\n")).map_err(|e| file_error(name, &e))?
        }
        Err(e) => return Err(file_error(name, &e)),
    };

    let mut roots: Vec<usize> = Vec::new();
    // Open spans: (arena index, full path as emitted).
    let mut stack: Vec<(usize, String)> = Vec::new();
    for ev in events {
        match ev.kind {
            EventKind::SpanOpen => {
                let parent_path = stack.last().map(|(_, p)| p.as_str());
                let name = relative_name(&ev.path, parent_path);
                let idx = arena.len();
                arena.push(ANode {
                    name,
                    open_fields: ev.fields,
                    close_fields: Vec::new(),
                    close_meta: Vec::new(),
                    ctx: ev.ctx,
                    crashed: false,
                    synthetic: false,
                    children: Vec::new(),
                    moved_out: Vec::new(),
                    file: file_idx,
                });
                match stack.last() {
                    Some(&(parent, _)) => arena[parent].children.push((idx, false)),
                    None => roots.push(idx),
                }
                stack.push((idx, ev.path));
            }
            EventKind::SpanClose => {
                let Some((top, top_path)) = stack.last() else {
                    return Err(file_error(
                        name,
                        &ObsError::UnbalancedClose { seq: ev.seq, path: ev.path, expected: None },
                    ));
                };
                if *top_path != ev.path {
                    return Err(file_error(
                        name,
                        &ObsError::UnbalancedClose {
                            seq: ev.seq,
                            path: ev.path,
                            expected: Some(top_path.clone()),
                        },
                    ));
                }
                let top = *top;
                stack.pop();
                arena[top].close_fields = ev.fields;
                arena[top].close_meta = ev.meta;
            }
            EventKind::Counter | EventKind::Gauge | EventKind::Histogram => *point_events += 1,
        }
    }
    // Spans still open at EOF: the process died while they ran.
    for (idx, _) in stack {
        arena[idx].crashed = true;
        *crashed_spans += 1;
    }
    Ok(roots)
}

/// Prefixes an [`ObsError`]'s message with the offending file name.
fn file_error(file: &str, err: &ObsError) -> ObsError {
    ObsError::Parse { line: 0, message: format!("{file}: {err}") }
}

fn relative_name(path: &str, parent_path: Option<&str>) -> String {
    match parent_path {
        Some(pp)
            if path.len() > pp.len() + 1
                && path.starts_with(pp)
                && path.as_bytes()[pp.len()] == b'/' =>
        {
            path[pp.len() + 1..].to_string()
        }
        _ => path.to_string(),
    }
}

/// Stitches a set of `(file name, file text)` pairs into one campaign
/// tree. Files are processed in sorted-name order so the assembly is
/// independent of the caller's directory iteration order; name files so
/// that lexicographic order is incarnation order
/// (`orchestrator.001.jsonl`, `cell.attempt001.jsonl`, ...).
///
/// Crate discipline: no I/O here — the CLI reads the directory and
/// hands over contents.
///
/// # Errors
///
/// [`ObsError::EmptyTrace`] when no file contributed any span;
/// [`ObsError::Parse`] (prefixed with the file name) on interior
/// corruption or unbalanced closes.
pub fn assemble(inputs: &[(String, String)]) -> Result<Assembly, ObsError> {
    let mut sorted: Vec<&(String, String)> = inputs.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));

    let mut arena: Vec<ANode> = Vec::new();
    let mut salvaged = Vec::new();
    let mut crashed_spans = 0u64;
    let mut point_events = 0u64;
    let mut files = Vec::with_capacity(sorted.len());
    // roots per file, parallel to `files`
    let mut file_roots: Vec<Vec<usize>> = Vec::with_capacity(sorted.len());
    for (file_idx, (name, text)) in sorted.iter().enumerate() {
        files.push(name.clone());
        let roots = parse_file_lenient(
            name,
            text,
            file_idx,
            &mut arena,
            &mut salvaged,
            &mut crashed_spans,
            &mut point_events,
        )?;
        file_roots.push(roots);
    }
    if arena.is_empty() {
        return Err(ObsError::EmptyTrace);
    }

    // Index 1: trace_file anchors. First occurrence wins; attempt file
    // names are charged-at-spawn and collision-free, so duplicates only
    // arise from malformed input.
    let mut anchors: BTreeMap<String, usize> = BTreeMap::new();
    // Index 2: span id -> node. First occurrence wins; ids can collide
    // across orchestrator incarnations (both restart the logical clock
    // on the same trace id), which is why cell files are grafted by
    // anchor, not by id.
    let mut by_span_id: BTreeMap<u64, usize> = BTreeMap::new();
    for (idx, node) in arena.iter().enumerate() {
        if let Some(tf) = field_str(&node.open_fields, TRACE_FILE_FIELD) {
            anchors.entry(tf.to_string()).or_insert(idx);
        }
        if let Some(ctx) = node.ctx {
            by_span_id.entry(ctx.span_id).or_insert(idx);
        }
    }

    // Graft pass: attach each file's roots under the span that claims
    // the file (anchor), else under the span its remote parent names.
    let mut top_level: Vec<usize> = Vec::new();
    for (file_idx, roots) in file_roots.iter().enumerate() {
        let anchor = anchors.get(&files[file_idx]).copied().filter(|&a| arena[a].file != file_idx);
        for &root in roots {
            let target = anchor.or_else(|| {
                arena[root]
                    .ctx
                    .and_then(|c| c.parent)
                    .and_then(|p| by_span_id.get(&p).copied())
                    .filter(|&t| t != root && !in_subtree(&arena, root, t))
            });
            match target {
                Some(t) => arena[t].children.push((root, true)),
                None => top_level.push(root),
            }
        }
    }

    // Re-parent pass: a span whose recorded remote parent is not its
    // structural parent was executed on behalf of another span (a serve
    // request answered for a traced client). Move it under the span it
    // names. Processed in arena (= file, emission) order so the result
    // is deterministic.
    for idx in 0..arena.len() {
        let Some(want) = arena[idx].ctx.and_then(|c| c.parent) else { continue };
        let Some(&target) = by_span_id.get(&want) else { continue };
        let Some(parent) = parent_of(&arena, idx) else { continue };
        let parent_matches = arena[parent].ctx.map(|c| c.span_id) == Some(want);
        if parent_matches || target == idx || target == parent || in_subtree(&arena, idx, target) {
            continue;
        }
        let was_grafted = detach(&mut arena, parent, idx);
        if !was_grafted {
            let observed = arena[idx].observed_total();
            arena[parent].moved_out.push(observed);
        }
        arena[target].children.push((idx, true));
    }

    // Orphan pass: every claimed trace file that contributed nothing
    // becomes an explicit synthetic node under its attempt span.
    let mut orphans = Vec::new();
    for (tf, &anchor) in &anchors {
        let contributed = files
            .iter()
            .position(|f| f == tf)
            .map(|fi| !file_roots[fi].is_empty())
            .unwrap_or(false);
        if !contributed {
            orphans.push(tf.clone());
            let idx = arena.len();
            arena.push(ANode::synthetic(
                ORPHAN_NAME,
                vec![
                    (SYNTHETIC_FIELD.to_string(), FieldValue::Bool(true)),
                    (TRACE_FILE_FIELD.to_string(), FieldValue::Str(tf.clone())),
                ],
            ));
            arena[anchor].children.push((idx, true));
        }
    }

    // Wrap everything in one synthetic campaign root.
    let root = arena.len();
    arena.push(ANode::synthetic(
        CAMPAIGN_ROOT,
        vec![(SYNTHETIC_FIELD.to_string(), FieldValue::Bool(true))],
    ));
    let top = std::mem::take(&mut top_level);
    arena[root].children = top.into_iter().map(|i| (i, true)).collect();

    let mut events = Vec::new();
    let mut seq = 0u64;
    emit_arena(&arena, root, CAMPAIGN_ROOT, &mut seq, &mut events);
    Ok(Assembly { events, files, orphans, salvaged, crashed_spans, point_events })
}

/// Structural parent lookup (linear scan; campaign trees are small).
fn parent_of(arena: &[ANode], idx: usize) -> Option<usize> {
    (0..arena.len()).find(|&p| arena[p].children.iter().any(|&(c, _)| c == idx))
}

/// True when `needle` lies inside the subtree rooted at `root`.
fn in_subtree(arena: &[ANode], root: usize, needle: usize) -> bool {
    if root == needle {
        return true;
    }
    arena[root].children.iter().any(|&(c, _)| in_subtree(arena, c, needle))
}

/// Removes `child` from `parent.children`, returning whether it had
/// been grafted (vs an original in-file child).
fn detach(arena: &mut [ANode], parent: usize, child: usize) -> bool {
    let pos = arena[parent].children.iter().position(|&(c, _)| c == child).expect("child present");
    arena[parent].children.remove(pos).1
}

/// Emitted total of a node: its own observed close, adjusted by the
/// stitching delta of its whole subtree — grafted-in children add their
/// emitted totals, moved-away children subtract their observed ones, and
/// both propagate up through in-file ancestors so parent ≥ Σ children
/// telescoping survives cross-process grafting. Crashed and synthetic
/// nodes, which never closed, total their children.
fn emitted_total(arena: &[ANode], idx: usize) -> CostVector {
    let node = &arena[idx];
    if node.crashed || node.synthetic {
        let mut total = CostVector::default();
        for &(c, _) in &node.children {
            total.add(&emitted_total(arena, c));
        }
        return total;
    }
    let (gain, loss) = stitch_delta(arena, idx);
    let mut total = node.observed_total();
    total.add(&gain);
    total.saturating_sub(&loss)
}

/// `(gain, loss)` the stitching passes introduced anywhere in the
/// subtree of a *closed* node, relative to its observed close totals:
/// grafted subtrees were never in this process's accounting (gain),
/// re-parented-away children were (loss).
fn stitch_delta(arena: &[ANode], idx: usize) -> (CostVector, CostVector) {
    let node = &arena[idx];
    let mut gain = CostVector::default();
    let mut loss = CostVector::default();
    for moved in &node.moved_out {
        loss.add(moved);
    }
    for &(c, grafted) in &node.children {
        let child = &arena[c];
        if grafted || child.crashed || child.synthetic {
            // Work this process's close never rolled up: count the
            // child's full emitted subtree as gain.
            gain.add(&emitted_total(arena, c));
        } else {
            let (g, l) = stitch_delta(arena, c);
            gain.add(&g);
            loss.add(&l);
        }
    }
    (gain, loss)
}

/// Writes the five cost keys into close fields/meta, preserving any
/// other keys the original close carried.
fn rewrite_cost(
    close_fields: &[(String, FieldValue)],
    close_meta: &[(String, FieldValue)],
    total: &CostVector,
) -> (FieldList, FieldList) {
    let mut fields: FieldList = close_fields
        .iter()
        .filter(|(k, _)| !matches!(k.as_str(), "forward" | "backward" | "flops" | "attack_steps"))
        .cloned()
        .collect();
    fields.extend([
        ("forward".to_string(), FieldValue::U64(total.forward)),
        ("backward".to_string(), FieldValue::U64(total.backward)),
        ("flops".to_string(), FieldValue::U64(total.flops)),
        ("attack_steps".to_string(), FieldValue::U64(total.attack_steps)),
    ]);
    let mut meta: Vec<(String, FieldValue)> =
        close_meta.iter().filter(|(k, _)| k != "wall_us").cloned().collect();
    meta.push(("wall_us".to_string(), FieldValue::U64(total.wall_us)));
    (fields, meta)
}

/// Depth-first emission of the stitched arena as a balanced, renumbered
/// event stream.
fn emit_arena(arena: &[ANode], idx: usize, path: &str, seq: &mut u64, out: &mut Vec<Event>) {
    let node = &arena[idx];
    let mut open_fields = node.open_fields.clone();
    if node.crashed {
        open_fields.push((CRASHED_FIELD.to_string(), FieldValue::Bool(true)));
    }
    out.push(Event {
        seq: *seq,
        kind: EventKind::SpanOpen,
        path: path.to_string(),
        fields: open_fields,
        meta: Vec::new(),
        ctx: node.ctx,
    });
    *seq += 1;
    for &(c, _) in &node.children {
        let child_path = format!("{path}/{}", arena[c].name);
        emit_arena(arena, c, &child_path, seq, out);
    }
    let total = emitted_total(arena, idx);
    let (fields, meta) = rewrite_cost(&node.close_fields, &node.close_meta, &total);
    out.push(Event {
        seq: *seq,
        kind: EventKind::SpanClose,
        path: path.to_string(),
        fields,
        meta,
        ctx: None,
    });
    *seq += 1;
}

// ---------------------------------------------------------------------
// Normalization: the logical projection under which chaos+resume equals
// uninterrupted.
// ---------------------------------------------------------------------

/// A normalized working node (paths rebuilt at emission).
#[derive(Debug, Clone)]
struct NNode {
    name: String,
    fields: Vec<(String, FieldValue)>,
    total: CostVector,
    children: Vec<NNode>,
    /// Containers merged or synthesized by normalization total their
    /// children; observed leaves keep their own close counters.
    recompute: bool,
}

impl NNode {
    fn total(&self) -> CostVector {
        if !self.recompute {
            return self.total;
        }
        let mut t = CostVector::default();
        for c in &self.children {
            t.add(&c.total());
        }
        t
    }
}

/// Key under which occurrences of "the same logical span" from
/// different attempts collide: leaf name plus open fields (markers
/// stripped). Deterministic runs re-emit identical fields, so the
/// retried copy of a span keys equal to the interrupted one.
fn merge_key(node: &SpanNode) -> String {
    let mut key = node.name.clone();
    for (k, v) in &node.fields {
        if k == CRASHED_FIELD || k == SYNTHETIC_FIELD {
            continue;
        }
        key.push('\u{1}');
        key.push_str(k);
        key.push('\u{2}');
        key.push_str(&format!("{v:?}"));
    }
    key
}

fn is_crashed(node: &SpanNode) -> bool {
    field_bool(&node.fields, CRASHED_FIELD)
}

fn is_synthetic(node: &SpanNode) -> bool {
    field_bool(&node.fields, SYNTHETIC_FIELD)
}

fn is_checkpoint(name: &str) -> bool {
    name == "checkpoint" || name.starts_with("checkpoint/")
}

fn stripped_fields(node: &SpanNode) -> Vec<(String, FieldValue)> {
    node.fields
        .iter()
        .filter(|(k, _)| k != CRASHED_FIELD && k != SYNTHETIC_FIELD)
        .cloned()
        .collect()
}

/// Projects one observed subtree: crashed spans, checkpoint spans and
/// synthetic markers vanish; everything else keeps its observed logical
/// totals. Returns `None` when the node itself must vanish.
fn norm_subtree(node: &SpanNode) -> Option<NNode> {
    if is_crashed(node) || is_synthetic(node) || is_checkpoint(&node.name) {
        return None;
    }
    let children = node.children.iter().filter_map(norm_subtree).collect();
    Some(NNode {
        name: node.name.clone(),
        fields: stripped_fields(node),
        total: node.total,
        children,
        recompute: false,
    })
}

/// Merges one cell's pooled attempt content (every attempt's children,
/// in attempt order) into the single subtree an uninterrupted run would
/// produce.
///
/// * `train` spans merge deeply: their pooled children are deduped by
///   (name, fields) keeping the **last closed** occurrence — a resumed
///   attempt re-emits the epochs it redid bitwise-identically (the
///   checkpoint determinism contract), so keep-last converges on the
///   full epoch set. Epochs are ordered by `index`; checkpoint and
///   crashed spans are dropped.
/// * Every other root (eval spans) dedupes by (name, fields) keeping
///   the last closed occurrence.
/// * Orphan placeholders vanish: an orphaned attempt's work was redone
///   by a later attempt.
fn merge_cell_content(pool: &[&SpanNode]) -> Vec<NNode> {
    let trains: Vec<&SpanNode> = pool.iter().copied().filter(|n| n.name == "train").collect();
    let mut out = Vec::new();
    if !trains.is_empty() {
        // Deep-merge: pool children across every train occurrence,
        // including crashed ones — a killed attempt's completed epochs
        // are real work its crashed parent never rolled up.
        let mut kept: BTreeMap<String, NNode> = BTreeMap::new();
        let mut order: Vec<String> = Vec::new();
        for train in &trains {
            for child in &train.children {
                let Some(normed) = norm_subtree(child) else { continue };
                let key = merge_key(child);
                kept.insert(key.clone(), normed);
                // keep-last: move the key to the back of the order
                order.retain(|k| k != &key);
                order.push(key);
            }
        }
        let mut children: Vec<NNode> =
            order.into_iter().map(|k| kept.remove(&k).expect("ordered key")).collect();
        // Epochs first in index order, everything else after in
        // keep-last order.
        let (mut epochs, rest): (Vec<NNode>, Vec<NNode>) =
            children.drain(..).partition(|n| n.name == "epoch");
        epochs.sort_by_key(|n| field_u64(&n.fields, "index"));
        let fields = trains.last().map(|t| stripped_fields(t)).unwrap_or_default();
        let mut merged_children = epochs;
        merged_children.extend(rest);
        out.push(NNode {
            name: "train".to_string(),
            fields,
            total: CostVector::default(),
            children: merged_children,
            recompute: true,
        });
    }
    // Non-train roots: dedupe by key, keep-last closed occurrence.
    let mut kept: BTreeMap<String, NNode> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    for node in pool.iter().copied().filter(|n| n.name != "train") {
        let Some(normed) = norm_subtree(node) else { continue };
        let key = merge_key(node);
        kept.insert(key.clone(), normed);
        order.retain(|k| k != &key);
        order.push(key);
    }
    out.extend(order.into_iter().filter_map(|k| kept.remove(&k)));
    out
}

/// The logical projection of an assembled campaign: retry attempts
/// merged into one synthetic attempt per cell, orchestrator
/// incarnations merged into one `sweep` node, checkpoint/crashed spans
/// dropped, meta and trace ids stripped, sequence numbers reassigned.
///
/// Two campaigns with the same grid — one uninterrupted, one
/// chaos-killed and resumed, at any worker thread count — project to
/// byte-identical event streams.
///
/// # Errors
///
/// Propagates [`crate::tree::build_tree`] errors on a stream that is
/// not a balanced assembly.
pub fn normalize(events: &[Event]) -> Result<Vec<Event>, ObsError> {
    let tree = build_tree(events)?;
    // Accept either an assembled stream (single campaign root) or a
    // bare forest; the projection always emits under a campaign root.
    let pool: Vec<&SpanNode> = match tree.roots.as_slice() {
        [root] if root.name == CAMPAIGN_ROOT => root.children.iter().collect(),
        other => other.iter().collect(),
    };

    let sweeps: Vec<&SpanNode> = pool.iter().copied().filter(|n| n.name == "sweep").collect();
    let others: Vec<&SpanNode> = pool.iter().copied().filter(|n| n.name != "sweep").collect();

    let mut campaign_children: Vec<NNode> = Vec::new();
    if !sweeps.is_empty() {
        // Group cells across incarnations by their identity fields
        // (the grid index), keeping first-seen order, then sorting by
        // index for resume-order independence.
        let mut cells: BTreeMap<String, Vec<&SpanNode>> = BTreeMap::new();
        let mut cell_order: Vec<String> = Vec::new();
        for sweep in &sweeps {
            for child in &sweep.children {
                if child.name != "sweep/cell" {
                    continue;
                }
                let key = merge_key(child);
                if !cells.contains_key(&key) {
                    cell_order.push(key.clone());
                }
                cells.entry(key).or_default().push(child);
            }
        }
        cell_order.sort_by_key(|k| {
            cells.get(k).and_then(|v| v.first()).map_or(u64::MAX, |c| field_u64(&c.fields, "index"))
        });

        let mut cell_nodes = Vec::new();
        for key in cell_order {
            let Some(occurrences) = cells.get(&key) else { continue };
            // Pool every attempt's content, across incarnations, in
            // emission order.
            let mut content: Vec<&SpanNode> = Vec::new();
            for cell in occurrences {
                for attempt in &cell.children {
                    if attempt.name == "sweep/attempt" {
                        content.extend(attempt.children.iter());
                    }
                }
            }
            let merged = merge_cell_content(&content);
            let attempt = NNode {
                name: "sweep/attempt".to_string(),
                fields: Vec::new(),
                total: CostVector::default(),
                children: merged,
                recompute: true,
            };
            let Some(last) = occurrences.last() else { continue };
            cell_nodes.push(NNode {
                name: "sweep/cell".to_string(),
                fields: stripped_fields(last),
                total: CostVector::default(),
                children: vec![attempt],
                recompute: true,
            });
        }
        // Guarded by `!sweeps.is_empty()`; the fallback never fires.
        let sweep_fields = sweeps.last().map(|s| stripped_fields(s)).unwrap_or_default();
        campaign_children.push(NNode {
            name: "sweep".to_string(),
            fields: sweep_fields,
            total: CostVector::default(),
            children: cell_nodes,
            recompute: true,
        });
    }
    campaign_children.extend(others.iter().filter_map(|n| norm_subtree(n)));

    let root = NNode {
        name: CAMPAIGN_ROOT.to_string(),
        fields: Vec::new(),
        total: CostVector::default(),
        children: campaign_children,
        recompute: true,
    };
    let mut out = Vec::new();
    let mut seq = 0u64;
    emit_normalized(&root, CAMPAIGN_ROOT, &mut seq, &mut out);
    Ok(out)
}

/// Emits a normalized node: logical fields only, close events carrying
/// exactly the four logical counters, no meta, no ctx.
fn emit_normalized(node: &NNode, path: &str, seq: &mut u64, out: &mut Vec<Event>) {
    out.push(Event {
        seq: *seq,
        kind: EventKind::SpanOpen,
        path: path.to_string(),
        fields: node.fields.clone(),
        meta: Vec::new(),
        ctx: None,
    });
    *seq += 1;
    for child in &node.children {
        let child_path = format!("{path}/{}", child.name);
        emit_normalized(child, &child_path, seq, out);
    }
    let total = node.total();
    out.push(Event {
        seq: *seq,
        kind: EventKind::SpanClose,
        path: path.to_string(),
        fields: vec![
            ("forward".to_string(), FieldValue::U64(total.forward)),
            ("backward".to_string(), FieldValue::U64(total.backward)),
            ("flops".to_string(), FieldValue::U64(total.flops)),
            ("attack_steps".to_string(), FieldValue::U64(total.attack_steps)),
        ],
        meta: Vec::new(),
        ctx: None,
    });
    *seq += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(trace: u128, span: u64, parent: Option<u64>) -> Option<TraceContext> {
        Some(TraceContext { trace_id: trace, span_id: span, parent })
    }

    fn open(
        seq: u64,
        path: &str,
        fields: Vec<(String, FieldValue)>,
        c: Option<TraceContext>,
    ) -> String {
        Event {
            seq,
            kind: EventKind::SpanOpen,
            path: path.into(),
            fields,
            meta: Vec::new(),
            ctx: c,
        }
        .to_json_line()
    }

    fn close(seq: u64, path: &str, forward: u64, flops: u64, wall: u64) -> String {
        Event {
            seq,
            kind: EventKind::SpanClose,
            path: path.into(),
            fields: vec![
                ("forward".into(), FieldValue::U64(forward)),
                ("backward".into(), FieldValue::U64(0)),
                ("flops".into(), FieldValue::U64(flops)),
                ("attack_steps".into(), FieldValue::U64(0)),
            ],
            meta: vec![("wall_us".into(), FieldValue::U64(wall))],
            ctx: None,
        }
        .to_json_line()
    }

    fn u(k: &str, v: u64) -> (String, FieldValue) {
        (k.to_string(), FieldValue::U64(v))
    }

    fn s(k: &str, v: &str) -> (String, FieldValue) {
        (k.to_string(), FieldValue::Str(v.to_string()))
    }

    /// One orchestrator trace: sweep -> cell -> attempt, with the
    /// attempt naming `cell_file` and carrying span id `attempt_id`.
    fn orchestrator(cell_file: &str, attempt_id: u64) -> String {
        [
            open(0, "sweep", vec![u("cells", 1), u("budget", 2)], ctx(7, 0x10, None)),
            open(1, "sweep/sweep/cell", vec![u("index", 0)], ctx(7, 0x11, Some(0x10))),
            open(
                2,
                "sweep/sweep/cell/sweep/attempt",
                vec![u("n", 1), s(TRACE_FILE_FIELD, cell_file)],
                ctx(7, attempt_id, Some(0x11)),
            ),
            close(3, "sweep/sweep/cell/sweep/attempt", 0, 0, 50),
            close(4, "sweep/sweep/cell", 0, 0, 60),
            close(5, "sweep", 0, 0, 70),
        ]
        .join("\n")
    }

    /// One cell trace: train with two epochs, remote-parented on
    /// `attempt_id`.
    fn cell_trace(attempt_id: u64) -> String {
        [
            open(0, "train", vec![u("epochs", 2)], ctx(7, 0x31, Some(attempt_id))),
            open(1, "train/epoch", vec![u("index", 0)], ctx(7, 0x32, Some(0x31))),
            close(2, "train/epoch", 4, 400, 10),
            open(3, "train/epoch", vec![u("index", 1)], ctx(7, 0x33, Some(0x31))),
            close(4, "train/epoch", 4, 400, 12),
            close(5, "train", 8, 800, 30),
        ]
        .join("\n")
    }

    fn files(pairs: &[(&str, String)]) -> Vec<(String, String)> {
        pairs.iter().map(|(n, t)| (n.to_string(), t.clone())).collect()
    }

    #[test]
    fn stitches_a_cell_under_its_attempt_span() {
        let inputs = files(&[
            ("orchestrator.001.jsonl", orchestrator("cell-000.attempt001.jsonl", 0x12)),
            ("cell-000.attempt001.jsonl", cell_trace(0x12)),
        ]);
        let assembly = assemble(&inputs).expect("assembles");
        assert!(assembly.orphans.is_empty());
        assert!(assembly.salvaged.is_empty());
        assert_eq!(assembly.crashed_spans, 0);

        let tree = build_tree(&assembly.events).expect("balanced");
        assert_eq!(tree.roots.len(), 1, "single campaign root");
        let campaign = &tree.roots[0];
        assert_eq!(campaign.name, CAMPAIGN_ROOT);
        let sweep = &campaign.children[0];
        let cell = &sweep.children[0];
        let attempt = &cell.children[0];
        assert_eq!(attempt.name, "sweep/attempt");
        let train = &attempt.children[0];
        assert_eq!(train.name, "train");
        assert_eq!(train.children.len(), 2);

        // Cost re-rollup: the grafted train's counters propagate into
        // the attempt AND its in-file ancestors.
        assert_eq!(train.total.forward, 8);
        assert_eq!(attempt.total.forward, 8);
        assert_eq!(cell.total.forward, 8);
        assert_eq!(sweep.total.forward, 8);
        assert_eq!(campaign.total.forward, 8);
        // Walls accumulate too: attempt observed 50 plus train's 30.
        assert_eq!(attempt.total.wall_us, 80);
    }

    #[test]
    fn assembly_is_input_order_invariant_and_renumbered() {
        let a = files(&[
            ("orchestrator.001.jsonl", orchestrator("cell-000.attempt001.jsonl", 0x12)),
            ("cell-000.attempt001.jsonl", cell_trace(0x12)),
        ]);
        let b: Vec<(String, String)> = a.iter().rev().cloned().collect();
        let ea = assemble(&a).expect("a").events;
        let eb = assemble(&b).expect("b").events;
        assert_eq!(ea, eb, "sorted-name processing makes order irrelevant");
        for (i, ev) in ea.iter().enumerate() {
            assert_eq!(ev.seq, i as u64, "renumbered densely");
        }
    }

    #[test]
    fn orphan_attempts_get_explicit_synthetic_nodes() {
        // The cell file exists but is empty: killed before first flush.
        let inputs = files(&[
            ("orchestrator.001.jsonl", orchestrator("cell-000.attempt001.jsonl", 0x12)),
            ("cell-000.attempt001.jsonl", String::new()),
        ]);
        let assembly = assemble(&inputs).expect("assembles");
        assert_eq!(assembly.orphans, vec!["cell-000.attempt001.jsonl".to_string()]);
        let tree = build_tree(&assembly.events).expect("balanced");
        let attempt = &tree.roots[0].children[0].children[0].children[0];
        let orphan = &attempt.children[0];
        assert_eq!(orphan.name, ORPHAN_NAME);
        assert!(field_bool(&orphan.fields, SYNTHETIC_FIELD));
        assert_eq!(field_str(&orphan.fields, TRACE_FILE_FIELD), Some("cell-000.attempt001.jsonl"));

        // A missing file (never created) is an orphan too.
        let inputs =
            files(&[("orchestrator.001.jsonl", orchestrator("cell-000.attempt001.jsonl", 0x12))]);
        let assembly = assemble(&inputs).expect("assembles");
        assert_eq!(assembly.orphans.len(), 1);
    }

    #[test]
    fn torn_tail_is_salvaged_and_unclosed_spans_marked_crashed() {
        let mut torn = cell_trace(0x12);
        // Drop the train close and leave a half-written line behind.
        let keep: Vec<&str> = torn.lines().take(5).collect();
        torn = format!("{}\n{{\"seq\":5,\"kind\":\"span_cl", keep.join("\n"));
        let inputs = files(&[
            ("orchestrator.001.jsonl", orchestrator("cell-000.attempt001.jsonl", 0x12)),
            ("cell-000.attempt001.jsonl", torn),
        ]);
        let assembly = assemble(&inputs).expect("assembles despite the tear");
        assert_eq!(assembly.salvaged, vec!["cell-000.attempt001.jsonl".to_string()]);
        assert_eq!(assembly.crashed_spans, 1);
        assert!(assembly.orphans.is_empty(), "partial events are not an orphan");

        let tree = build_tree(&assembly.events).expect("auto-closed into balance");
        let attempt = &tree.roots[0].children[0].children[0].children[0];
        let train = &attempt.children[0];
        assert!(field_bool(&train.fields, CRASHED_FIELD));
        // A crashed span totals its completed children.
        assert_eq!(train.total.forward, 8);
    }

    #[test]
    fn remote_request_spans_reparent_under_their_client() {
        // Client process: one loadgen span that carried its context to
        // the server in a header.
        let client =
            [open(0, "loadgen", Vec::new(), ctx(9, 0xAA, None)), close(1, "loadgen", 0, 0, 5)]
                .join("\n");
        // Server process: the batch executes the request, but the
        // request span records the client as its remote parent.
        let server = [
            open(0, "serve/batch", vec![u("size", 1)], ctx(9, 0xB0, None)),
            open(
                1,
                "serve/batch/serve/request",
                vec![u("prediction", 3)],
                ctx(9, 0xB1, Some(0xAA)),
            ),
            close(2, "serve/batch/serve/request", 0, 0, 2),
            close(3, "serve/batch", 1, 100, 9),
        ]
        .join("\n");
        let inputs = files(&[("client.jsonl", client), ("server.jsonl", server)]);
        let assembly = assemble(&inputs).expect("assembles");
        let tree = build_tree(&assembly.events).expect("balanced");
        let campaign = &tree.roots[0];
        let loadgen = campaign
            .children
            .iter()
            .find(|n| n.name == "loadgen")
            .expect("loadgen stays top-level");
        assert_eq!(loadgen.children.len(), 1, "request moved under its client");
        assert_eq!(loadgen.children[0].name, "serve/request");
        let batch = campaign
            .children
            .iter()
            .find(|n| n.name == "serve/batch")
            .expect("batch stays top-level");
        assert!(batch.children.is_empty(), "request left the batch");
        // The move subtracts the request's observed cost from the batch
        // and credits the client.
        assert_eq!(batch.total.wall_us, 9 - 2);
        assert_eq!(loadgen.total.wall_us, 5 + 2);
    }

    #[test]
    fn empty_input_is_typed() {
        assert_eq!(assemble(&[]), Err(ObsError::EmptyTrace));
        let inputs = files(&[("a.jsonl", String::new())]);
        assert_eq!(assemble(&inputs), Err(ObsError::EmptyTrace));
    }

    #[test]
    fn interior_corruption_names_the_file() {
        let text = format!("not json\n{}", close(1, "x", 0, 0, 0));
        let inputs = files(&[("bad.jsonl", text)]);
        match assemble(&inputs) {
            Err(ObsError::Parse { message, .. }) => assert!(message.contains("bad.jsonl")),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    /// An uninterrupted one-cell campaign and a chaos-killed-and-
    /// resumed one (first attempt dies mid-epoch-1, retry resumes and
    /// re-runs epoch 1 bitwise-identically) normalize to the same
    /// events.
    #[test]
    fn normalize_converges_chaos_to_uninterrupted() {
        let uninterrupted = files(&[
            ("orchestrator.001.jsonl", orchestrator("cell-000.attempt001.jsonl", 0x12)),
            (
                "cell-000.attempt001.jsonl",
                [
                    open(0, "train", vec![u("epochs", 2)], ctx(7, 0x31, Some(0x12))),
                    open(1, "train/epoch", vec![u("index", 0)], ctx(7, 0x32, Some(0x31))),
                    open(
                        2,
                        "train/epoch/checkpoint/save",
                        vec![u("generation", 1)],
                        ctx(7, 0x39, Some(0x32)),
                    ),
                    close(3, "train/epoch/checkpoint/save", 0, 0, 1),
                    close(4, "train/epoch", 4, 400, 10),
                    open(5, "train/epoch", vec![u("index", 1)], ctx(7, 0x33, Some(0x31))),
                    close(6, "train/epoch", 4, 400, 12),
                    close(7, "train", 8, 800, 30),
                    open(8, "eval", vec![s("attack", "bim")], ctx(7, 0x34, Some(0x12))),
                    close(9, "eval", 2, 200, 8),
                ]
                .join("\n"),
            ),
        ]);

        // Chaos: attempt 1 closes epoch 0 (with a different checkpoint
        // generation) and dies inside epoch 1; the orchestrator crashes
        // too and a second incarnation retries the cell.
        let chaos = files(&[
            (
                "orchestrator.001.jsonl",
                [
                    open(0, "sweep", vec![u("cells", 1), u("budget", 2)], ctx(7, 0x10, None)),
                    open(1, "sweep/sweep/cell", vec![u("index", 0)], ctx(7, 0x11, Some(0x10))),
                    open(
                        2,
                        "sweep/sweep/cell/sweep/attempt",
                        vec![u("n", 1), s(TRACE_FILE_FIELD, "cell-000.attempt001.jsonl")],
                        ctx(7, 0x12, Some(0x11)),
                    ),
                ]
                .join("\n"),
            ),
            (
                "cell-000.attempt001.jsonl",
                [
                    open(0, "train", vec![u("epochs", 2)], ctx(7, 0x41, Some(0x12))),
                    open(1, "train/epoch", vec![u("index", 0)], ctx(7, 0x42, Some(0x41))),
                    open(
                        2,
                        "train/epoch/checkpoint/save",
                        vec![u("generation", 1)],
                        ctx(7, 0x49, Some(0x42)),
                    ),
                    close(3, "train/epoch/checkpoint/save", 0, 0, 1),
                    close(4, "train/epoch", 4, 400, 11),
                    open(5, "train/epoch", vec![u("index", 1)], ctx(7, 0x43, Some(0x41))),
                ]
                .join("\n"),
            ),
            (
                "orchestrator.002.jsonl",
                [
                    open(0, "sweep", vec![u("cells", 1), u("budget", 2)], ctx(7, 0x10, None)),
                    open(1, "sweep/sweep/cell", vec![u("index", 0)], ctx(7, 0x11, Some(0x10))),
                    open(
                        2,
                        "sweep/sweep/cell/sweep/attempt",
                        vec![u("n", 2), s(TRACE_FILE_FIELD, "cell-000.attempt002.jsonl")],
                        ctx(7, 0x12, Some(0x11)),
                    ),
                    close(3, "sweep/sweep/cell/sweep/attempt", 0, 0, 40),
                    close(4, "sweep/sweep/cell", 0, 0, 45),
                    close(5, "sweep", 0, 0, 50),
                ]
                .join("\n"),
            ),
            (
                "cell-000.attempt002.jsonl",
                [
                    open(0, "train", vec![u("epochs", 2)], ctx(7, 0x51, Some(0x12))),
                    open(
                        1,
                        "train/checkpoint",
                        vec![s("action", "resume")],
                        ctx(7, 0x52, Some(0x51)),
                    ),
                    close(2, "train/checkpoint", 0, 0, 2),
                    // the resumed epoch 1 is bitwise-identical in its
                    // logical content to the uninterrupted one
                    open(3, "train/epoch", vec![u("index", 1)], ctx(7, 0x53, Some(0x51))),
                    close(4, "train/epoch", 4, 400, 13),
                    close(5, "train", 4, 400, 20),
                    open(6, "eval", vec![s("attack", "bim")], ctx(7, 0x54, Some(0x12))),
                    close(7, "eval", 2, 200, 9),
                ]
                .join("\n"),
            ),
        ]);

        let a = assemble(&uninterrupted).expect("uninterrupted assembles");
        let b = assemble(&chaos).expect("chaos assembles");
        assert_ne!(a.events, b.events, "raw assemblies differ (attempts, crashes)");

        let na = normalize(&a.events).expect("normalizes");
        let nb = normalize(&b.events).expect("normalizes");
        let la: Vec<String> = na.iter().map(Event::to_json_line).collect();
        let lb: Vec<String> = nb.iter().map(Event::to_json_line).collect();
        assert_eq!(la, lb, "normalized projections are byte-identical");

        // The projection kept the full epoch set and the eval, dropped
        // checkpoints, and carries no meta or ctx anywhere.
        let tree = build_tree(&na).expect("balanced");
        let attempt = &tree.roots[0].children[0].children[0].children[0];
        let train = &attempt.children[0];
        assert_eq!(train.children.len(), 2, "epochs 0 and 1, no checkpoint spans");
        assert_eq!(field_u64(&train.children[0].fields, "index"), 0);
        assert_eq!(field_u64(&train.children[1].fields, "index"), 1);
        assert_eq!(train.total.forward, 8);
        assert_eq!(attempt.children[1].name, "eval");
        for ev in &na {
            assert!(ev.meta.is_empty(), "normalized events carry no meta");
            assert!(ev.ctx.is_none(), "normalized events carry no ctx");
        }
    }

    #[test]
    fn normalize_tolerates_a_bare_forest() {
        let events = read_events(
            &[open(0, "train", Vec::new(), None), close(1, "train", 3, 30, 4)].join("\n"),
        )
        .expect("reads");
        let normed = normalize(&events).expect("normalizes");
        let tree = build_tree(&normed).expect("balanced");
        assert_eq!(tree.roots[0].name, CAMPAIGN_ROOT);
        assert_eq!(tree.roots[0].children[0].name, "train");
        assert_eq!(tree.roots[0].total.forward, 3);
    }
}
