//! `simpadv-obs`: trace analysis and the performance-regression
//! observatory.
//!
//! Layered on the `simpadv-trace` event schema, this crate turns a flat
//! JSONL trace back into knowledge:
//!
//! * [`reader`] — strict JSONL loading with truncation-aware typed
//!   errors ([`ObsError`]): a torn final line, an empty trace, and
//!   unbalanced span pairs all degrade into diagnosable failures.
//! * [`collector`] — cross-process campaign assembly: stitches the
//!   per-attempt and orchestrator traces a `sweep --trace-dir` campaign
//!   leaves behind into one rooted span tree (remote-parent links,
//!   orphan markers for cells killed before their first flush), plus
//!   the attempt-merging logical projection under which an interrupted
//!   and resumed campaign is byte-identical to an uninterrupted one.
//! * [`tree`] — span-tree reconstruction from `span_open`/`span_close`
//!   nesting, per-span **total** vs **self** cost attribution (wall
//!   microseconds plus the logical clock counters), and the hot-spot
//!   table behind `trace top`.
//! * [`flame`] — inferno-compatible collapsed-stack flamegraph output
//!   (`trace flame`), self-weighted so stack weights telescope to the
//!   tree's totals.
//! * [`diff`] — `trace diff A B`, the executable determinism line:
//!   logical event content must be bitwise identical or the comparison
//!   fails; wall-time drift beyond a threshold is merely annotated.
//! * [`baseline`] — the `BENCH_<experiment>.json` artifact schema, its
//!   construction helpers, and the logical-regression comparison the CI
//!   perf gate runs against the committed baseline.
//! * [`kernels`] — the `BENCH_kernels.json` kernel scoreboard: one
//!   logical row per microbenchmark workload (shape + per-iteration
//!   clock counters + logical bytes), wall statistics quarantined in
//!   `meta`, and the comparison the `kernel-bench` CI job gates on.
//! * [`sweep`] — the `BENCH_sweep.json` campaign aggregate: one logical
//!   row per completed grid cell plus the explicit quarantine list, with
//!   retry effort and wall time quarantined in `meta`; a resumed or
//!   chaos-interrupted campaign must reproduce the logical sections
//!   bitwise.
//! * [`artifact`] — [`ArtifactKind`] classification of `BENCH_*.json`
//!   files by their `experiment` tag, so `bench compare` dispatches to
//!   the right comparison and rejects mixed kinds with a typed error.
//!
//! The crate stays dependency-light by design (trace + the vendored
//! serde shims only) and performs no I/O beyond what callers hand it:
//! the CLI owns files, the bench harness owns artifacts.
//!
//! Wall-clock quarantine: this crate and `crates/trace/src/clock.rs`
//! are the only places lint rule R10 permits direct
//! `std::time::Instant`/`SystemTime` use — analysis code may need raw
//! timestamps, production code must go through the span clock.

pub mod artifact;
pub mod baseline;
pub mod collector;
pub mod diff;
pub mod error;
pub mod flame;
pub mod kernels;
pub mod reader;
pub mod serve;
pub mod sweep;
pub mod tree;

pub use artifact::{parse_artifact, ArtifactKind};
pub use baseline::{
    compare, logical_digest, BenchArtifact, BenchMeta, CompareOptions, CompareReport, ScaleInfo,
    TrainerCost, WallStats, BENCH_SCHEMA_VERSION,
};
pub use collector::{assemble, normalize, Assembly};
pub use diff::{diff, DiffOptions, DiffReport};
pub use error::ObsError;
pub use flame::{collapse, parse_collapsed, prefix_totals, render_collapsed, FlameWeight};
pub use kernels::{
    compare_kernels, KernelRow, KernelWallRow, KernelsArtifact, KernelsMeta, KERNELS_EXPERIMENT,
    KERNELS_SCHEMA_VERSION,
};
pub use reader::read_events;
pub use serve::{
    compare_serve, ServeArtifact, ServeGenerationRow, ServeMeta, ServeScale, SERVE_EXPERIMENT,
    SERVE_SCHEMA_VERSION,
};
pub use sweep::{
    compare_sweep, QuarantineRow, SweepArtifact, SweepCellRow, SweepMeta, SweepScale,
    SWEEP_EXPERIMENT, SWEEP_SCHEMA_VERSION,
};
pub use tree::{
    attribute, build_tree, hot_spots, render_top, CostVector, HotSpot, PathStat, SpanNode,
    SpanTree, TopBy,
};
