//! Collapsed-stack flamegraph output (`trace flame`).
//!
//! The format is the classic `stack;frames;semicolon-joined weight`
//! one — directly consumable by inferno / flamegraph.pl / speedscope.
//! Each line carries a stack's **self** weight, so the weights telescope:
//! summing every line that starts with a frame reproduces that frame's
//! total, which is exactly the invariant the property tests pin down.

use crate::error::ObsError;
use crate::tree::{CostVector, SpanNode, SpanTree};
use std::collections::BTreeMap;

/// Which cost counter a flamegraph weighs stacks by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlameWeight {
    /// Wall microseconds (non-logical, the default).
    Wall,
    /// Flops proxy (logical).
    Flops,
    /// Gradient work: forward + backward passes (logical).
    Work,
    /// Attack steps (logical).
    AttackSteps,
}

impl FlameWeight {
    /// Parses a `--weight` value.
    pub fn parse(s: &str) -> Option<FlameWeight> {
        match s {
            "wall" => Some(FlameWeight::Wall),
            "flops" => Some(FlameWeight::Flops),
            "work" => Some(FlameWeight::Work),
            "attack-steps" => Some(FlameWeight::AttackSteps),
            _ => None,
        }
    }

    /// Extracts this weight from a cost vector.
    pub fn of(&self, cost: &CostVector) -> u64 {
        match self {
            FlameWeight::Wall => cost.wall_us,
            FlameWeight::Flops => cost.flops,
            FlameWeight::Work => cost.work(),
            FlameWeight::AttackSteps => cost.attack_steps,
        }
    }
}

/// Frame-name hygiene: `;` separates frames and the final space
/// separates the weight, so neither may appear inside a frame.
fn sanitize(name: &str) -> String {
    name.replace(';', ":").replace(' ', "_")
}

/// Folds the tree into merged collapsed stacks, weighted by each span's
/// **self** cost. Identical stacks (e.g. every `epoch` under the same
/// `train`) merge by summation. Zero-weight stacks are kept so the
/// output enumerates the full tree shape deterministically.
pub fn collapse(tree: &SpanTree, weight: FlameWeight) -> Vec<(String, u64)> {
    let mut merged: BTreeMap<String, u64> = BTreeMap::new();
    fn go(
        node: &SpanNode,
        frames: &mut Vec<String>,
        weight: FlameWeight,
        merged: &mut BTreeMap<String, u64>,
    ) {
        frames.push(sanitize(&node.name));
        *merged.entry(frames.join(";")).or_insert(0) += weight.of(&node.self_cost());
        for c in &node.children {
            go(c, frames, weight, merged);
        }
        frames.pop();
    }
    let mut frames = Vec::new();
    for r in &tree.roots {
        go(r, &mut frames, weight, &mut merged);
    }
    merged.into_iter().collect()
}

/// Renders collapsed stacks as the canonical `stack weight` lines.
pub fn render_collapsed(stacks: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (stack, w) in stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&w.to_string());
        out.push('\n');
    }
    out
}

/// Parses collapsed-stack text back into `(stack, weight)` pairs — the
/// round-trip half of the flamegraph property tests.
///
/// # Errors
///
/// Returns [`ObsError::Parse`] on a line without a trailing integer
/// weight.
pub fn parse_collapsed(text: &str) -> Result<Vec<(String, u64)>, ObsError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (stack, weight) = line.rsplit_once(' ').ok_or_else(|| ObsError::Parse {
            line: i + 1,
            message: "collapsed-stack line without a weight".into(),
        })?;
        let weight: u64 = weight.parse().map_err(|_| ObsError::Parse {
            line: i + 1,
            message: format!("invalid weight '{weight}'"),
        })?;
        out.push((stack.to_string(), weight));
    }
    Ok(out)
}

/// Sums, for every stack prefix, the self-weights of all lines under it
/// — reconstructing each frame-path's *total* weight from collapsed
/// output. Inverse of [`collapse`] + self-cost attribution.
pub fn prefix_totals(stacks: &[(String, u64)]) -> BTreeMap<String, u64> {
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for (stack, w) in stacks {
        let frames: Vec<&str> = stack.split(';').collect();
        for depth in 1..=frames.len() {
            *totals.entry(frames[..depth].join(";")).or_insert(0) += w;
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::build_tree;
    use simpadv_trace::{Event, EventKind, FieldValue};

    fn open(seq: u64, path: &str) -> Event {
        Event {
            seq,
            kind: EventKind::SpanOpen,
            path: path.into(),
            fields: Vec::new(),
            meta: Vec::new(),
            ctx: None,
        }
    }

    fn close(seq: u64, path: &str, wall: u64) -> Event {
        Event {
            seq,
            kind: EventKind::SpanClose,
            path: path.into(),
            fields: vec![("flops".into(), FieldValue::U64(wall * 10))],
            meta: vec![("wall_us".into(), FieldValue::U64(wall))],
            ctx: None,
        }
    }

    fn sample_tree() -> crate::tree::SpanTree {
        build_tree(&[
            open(0, "train"),
            open(1, "train/epoch"),
            close(2, "train/epoch", 30),
            open(3, "train/epoch"),
            close(4, "train/epoch", 50),
            close(5, "train", 100),
        ])
        .expect("balanced")
    }

    #[test]
    fn collapse_merges_identical_stacks_with_self_weights() {
        let stacks = collapse(&sample_tree(), FlameWeight::Wall);
        assert_eq!(stacks, vec![("train".to_string(), 20), ("train;epoch".to_string(), 80)]);
    }

    #[test]
    fn rendered_output_round_trips() {
        let stacks = collapse(&sample_tree(), FlameWeight::Wall);
        let text = render_collapsed(&stacks);
        assert_eq!(parse_collapsed(&text).expect("well-formed"), stacks);
    }

    #[test]
    fn prefix_totals_reconstruct_root_totals() {
        let stacks = collapse(&sample_tree(), FlameWeight::Wall);
        let totals = prefix_totals(&stacks);
        assert_eq!(totals["train"], 100);
        assert_eq!(totals["train;epoch"], 80);
    }

    #[test]
    fn logical_weights_are_selectable() {
        let stacks = collapse(&sample_tree(), FlameWeight::Flops);
        let totals = prefix_totals(&stacks);
        assert_eq!(totals["train"], 1000);
    }

    #[test]
    fn frame_names_are_sanitized() {
        assert_eq!(sanitize("a;b c"), "a:b_c");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(matches!(parse_collapsed("nospace"), Err(ObsError::Parse { line: 1, .. })));
        assert!(matches!(parse_collapsed("a b notanum"), Err(ObsError::Parse { .. })));
    }

    #[test]
    fn weight_parse_covers_all_modes() {
        for s in ["wall", "flops", "work", "attack-steps"] {
            assert!(FlameWeight::parse(s).is_some(), "{s}");
        }
        assert!(FlameWeight::parse("time").is_none());
    }
}
