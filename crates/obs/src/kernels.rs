//! `BENCH_kernels.json`: the kernel-microbenchmark scoreboard artifact.
//!
//! Same separation as the training baseline ([`crate::baseline`]) and
//! the serving artifact ([`crate::serve`]): the top-level sections are
//! LOGICAL — one row per registered workload carrying the shape and the
//! per-iteration clock counters (forward/backward/flops/attack steps)
//! plus the logical bytes the kernel moves, all a pure function of the
//! registry and therefore bitwise identical on any machine at any
//! `--threads`. Everything the wall clock touches — calibrated
//! iteration counts, per-iteration wall statistics, the derived GFLOP/s
//! and bytes/s — is quarantined in `meta`, where [`compare_kernels`]
//! only warns, never fails.

use crate::baseline::{CompareOptions, CompareReport, WallStats, WALL_NOTE};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Schema version for [`KernelsArtifact`]; bump on breaking change.
pub const KERNELS_SCHEMA_VERSION: u64 = 1;

/// The experiment tag distinguishing kernel scoreboards from training
/// and serving artifacts when `bench compare` dispatches on contents.
pub const KERNELS_EXPERIMENT: &str = "kernels";

/// One workload's logical cost: the deterministic, gateable projection
/// of a single kernel iteration.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelRow {
    /// Workload id, e.g. `matmul/64x784x128`.
    pub name: String,
    /// Registry group (`matmul`, `conv`, `attack`, `serve`).
    pub group: String,
    /// Shape parameters in registry order (e.g. `[m, k, n]`).
    pub shape: Vec<u64>,
    /// Logical forward passes per iteration.
    pub forward: u64,
    /// Logical backward passes per iteration.
    pub backward: u64,
    /// Logical multiply-accumulate proxy per iteration.
    pub flops: u64,
    /// Logical signed-gradient attack steps per iteration.
    pub attack_steps: u64,
    /// Logical bytes the kernel reads + writes per iteration (from the
    /// shape arithmetic, not from measurement).
    pub bytes: u64,
}

/// One workload's wall-clock measurements. Machine-dependent; lives in
/// `meta` and is never grounds for a gate failure.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelWallRow {
    /// Workload id (joins against [`KernelRow::name`]).
    pub name: String,
    /// Calibrated iterations per timed repeat.
    pub iters: u64,
    /// Wall seconds per iteration, median/min/max over `--repeat` runs.
    pub wall_per_iter_s: WallStats,
    /// Logical flops / median wall seconds, in GFLOP/s (0 when the
    /// workload is pure data movement).
    pub gflops: f64,
    /// Logical bytes / median wall seconds, in GB/s.
    pub gbytes_per_s: f64,
}

/// Non-logical run conditions and the per-workload wall table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelsMeta {
    /// `--threads` the sweep was pinned to (0 = runtime default).
    pub threads: u64,
    /// Cores the producing machine advertised.
    pub threads_available: u64,
    /// `--repeat` count behind the wall statistics.
    pub repeat: u64,
    /// Warmup iterations run before each timed loop.
    pub warmup: u64,
    /// Wall budget each calibrated loop aims for, microseconds.
    pub target_iter_wall_us: u64,
    /// Per-workload wall measurements.
    pub wall: Vec<KernelWallRow>,
    /// Standing caveat about interpreting the wall numbers.
    pub note: String,
}

/// The kernel scoreboard written by `bench kernels`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelsArtifact {
    /// Always [`KERNELS_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Always [`KERNELS_EXPERIMENT`].
    pub experiment: String,
    /// One logical row per registered workload, in registry order.
    pub workloads: Vec<KernelRow>,
    /// Events in the sweep's single-iteration logical trace.
    pub events: u64,
    /// FNV-1a digest over that trace's logical projection
    /// ([`crate::baseline::logical_digest`]).
    pub trace_digest: String,
    /// Machine-dependent numbers, quarantined.
    pub meta: KernelsMeta,
}

impl KernelsArtifact {
    /// The standing wall-number caveat, for the `meta.note` field.
    pub fn wall_note() -> String {
        WALL_NOTE.to_string()
    }
}

fn compare_counter(out: &mut Vec<String>, name: &str, what: &str, base: u64, cand: u64) {
    if base != cand {
        out.push(format!("workload '{name}': logical {what} changed {base} -> {cand}"));
    }
}

/// Compares two kernel scoreboards: logical sections must match
/// exactly; wall drift only warns.
///
/// Fails on: schema/experiment mismatch, a workload missing from either
/// side, any per-row shape or logical-counter change, event-count or
/// trace-digest changes. Warns on: per-workload median wall-per-iter
/// drift beyond `opts.wall_threshold_pct`, differing thread run
/// conditions, and workloads with no wall row in the candidate.
pub fn compare_kernels(
    baseline: &KernelsArtifact,
    candidate: &KernelsArtifact,
    opts: &CompareOptions,
) -> CompareReport {
    let mut report = CompareReport::default();
    let reg = &mut report.regressions;
    if baseline.schema_version != candidate.schema_version {
        reg.push(format!(
            "schema version {} vs {}",
            baseline.schema_version, candidate.schema_version
        ));
    }
    if baseline.experiment != candidate.experiment {
        reg.push(format!("experiment '{}' vs '{}'", baseline.experiment, candidate.experiment));
    }

    let cand_rows: BTreeMap<&str, &KernelRow> =
        candidate.workloads.iter().map(|w| (w.name.as_str(), w)).collect();
    for base in &baseline.workloads {
        match cand_rows.get(base.name.as_str()) {
            None => reg.push(format!("workload '{}' missing from candidate", base.name)),
            Some(cand) => {
                if base.shape != cand.shape {
                    reg.push(format!(
                        "workload '{}': shape {:?} vs {:?}",
                        base.name, base.shape, cand.shape
                    ));
                }
                if base.group != cand.group {
                    reg.push(format!(
                        "workload '{}': group '{}' vs '{}'",
                        base.name, base.group, cand.group
                    ));
                }
                compare_counter(reg, &base.name, "forward passes", base.forward, cand.forward);
                compare_counter(reg, &base.name, "backward passes", base.backward, cand.backward);
                compare_counter(reg, &base.name, "flops", base.flops, cand.flops);
                compare_counter(
                    reg,
                    &base.name,
                    "attack steps",
                    base.attack_steps,
                    cand.attack_steps,
                );
                compare_counter(reg, &base.name, "bytes", base.bytes, cand.bytes);
            }
        }
    }
    for cand in &candidate.workloads {
        if !baseline.workloads.iter().any(|w| w.name == cand.name) {
            reg.push(format!("workload '{}' absent from baseline", cand.name));
        }
    }

    if baseline.events != candidate.events {
        reg.push(format!("trace event count {} vs {}", baseline.events, candidate.events));
    }
    if baseline.trace_digest != candidate.trace_digest {
        reg.push(format!(
            "trace logical digest {} vs {}",
            baseline.trace_digest, candidate.trace_digest
        ));
    }

    let (bm, cm) = (&baseline.meta, &candidate.meta);
    if bm.threads != cm.threads || bm.threads_available != cm.threads_available {
        report.warnings.push(format!(
            "run conditions differ: threads {}/{} (baseline) vs {}/{} (candidate)",
            bm.threads, bm.threads_available, cm.threads, cm.threads_available
        ));
    }
    let cand_wall: BTreeMap<&str, &KernelWallRow> =
        cm.wall.iter().map(|w| (w.name.as_str(), w)).collect();
    for base in &bm.wall {
        let Some(cand) = cand_wall.get(base.name.as_str()) else {
            report
                .warnings
                .push(format!("workload '{}' has no wall measurements in candidate", base.name));
            continue;
        };
        let (b, c) = (base.wall_per_iter_s.median_s, cand.wall_per_iter_s.median_s);
        if b > 0.0 {
            let drift_pct = (c - b).abs() / b * 100.0;
            if drift_pct > opts.wall_threshold_pct {
                report.warnings.push(format!(
                    "workload '{}': median wall per iter {:.3e}s -> {:.3e}s ({}{:.0}%)",
                    base.name,
                    b,
                    c,
                    if c >= b { "+" } else { "-" },
                    drift_pct
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact() -> KernelsArtifact {
        KernelsArtifact {
            schema_version: KERNELS_SCHEMA_VERSION,
            experiment: KERNELS_EXPERIMENT.to_string(),
            workloads: vec![
                KernelRow {
                    name: "matmul/64x784x128".into(),
                    group: "matmul".into(),
                    shape: vec![64, 784, 128],
                    forward: 0,
                    backward: 0,
                    flops: 64 * 784 * 128,
                    attack_steps: 0,
                    bytes: 4 * (64 * 784 + 784 * 128 + 64 * 128),
                },
                KernelRow {
                    name: "attack/signed_step/16x784".into(),
                    group: "attack".into(),
                    shape: vec![16, 784],
                    forward: 1,
                    backward: 1,
                    flops: 200_704,
                    attack_steps: 1,
                    bytes: 4 * 4 * 16 * 784,
                },
            ],
            events: 4,
            trace_digest: "00000000deadbeef".into(),
            meta: KernelsMeta {
                threads: 1,
                threads_available: 1,
                repeat: 3,
                warmup: 2,
                target_iter_wall_us: 20_000,
                wall: vec![KernelWallRow {
                    name: "matmul/64x784x128".into(),
                    iters: 50,
                    wall_per_iter_s: WallStats { median_s: 1e-4, min_s: 9e-5, max_s: 2e-4 },
                    gflops: 64.0,
                    gbytes_per_s: 10.0,
                }],
                note: KernelsArtifact::wall_note(),
            },
        }
    }

    #[test]
    fn identical_artifacts_pass_cleanly() {
        let a = artifact();
        let report = compare_kernels(&a, &a, &CompareOptions::default());
        assert!(report.passed(), "{:?}", report.regressions);
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn planted_flops_regression_fails_the_gate() {
        let base = artifact();
        let mut cand = artifact();
        cand.workloads[0].flops += 1;
        let report = compare_kernels(&base, &cand, &CompareOptions::default());
        assert!(!report.passed());
        assert!(report.regressions.iter().any(|r| r.contains("flops")), "{:?}", report.regressions);
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn shape_and_byte_changes_are_regressions() {
        let base = artifact();
        let mut cand = artifact();
        cand.workloads[0].shape[0] = 65;
        cand.workloads[1].bytes += 8;
        let report = compare_kernels(&base, &cand, &CompareOptions::default());
        assert!(report.regressions.iter().any(|r| r.contains("shape")));
        assert!(report.regressions.iter().any(|r| r.contains("bytes")));
    }

    #[test]
    fn missing_and_extra_workloads_fail() {
        let base = artifact();
        let mut cand = artifact();
        cand.workloads[1].name = "attack/project_ball/16x784".into();
        let report = compare_kernels(&base, &cand, &CompareOptions::default());
        assert!(report.regressions.iter().any(|r| r.contains("missing from candidate")));
        assert!(report.regressions.iter().any(|r| r.contains("absent from baseline")));
    }

    #[test]
    fn wall_drift_and_thread_conditions_only_warn() {
        let base = artifact();
        let mut cand = artifact();
        cand.meta.threads = 4;
        cand.meta.wall[0].wall_per_iter_s.median_s *= 3.0;
        let report = compare_kernels(&base, &cand, &CompareOptions::default());
        assert!(report.passed(), "{:?}", report.regressions);
        assert!(report.warnings.iter().any(|w| w.contains("threads")), "{:?}", report.warnings);
        assert!(
            report.warnings.iter().any(|w| w.contains("wall per iter")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn digest_and_event_count_changes_fail() {
        let base = artifact();
        let mut cand = artifact();
        cand.events += 1;
        cand.trace_digest = "ffffffffffffffff".into();
        let report = compare_kernels(&base, &cand, &CompareOptions::default());
        assert!(report.regressions.iter().any(|r| r.contains("event count")));
        assert!(report.regressions.iter().any(|r| r.contains("digest")));
    }

    #[test]
    fn json_round_trip_is_exact() {
        let a = artifact();
        let text = serde_json::to_string_pretty(&a).unwrap();
        let back: KernelsArtifact = serde_json::from_str(&text).unwrap();
        assert_eq!(a, back);
    }
}
