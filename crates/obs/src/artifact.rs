//! Artifact-kind dispatch for `bench compare`.
//!
//! Four artifact families share the `BENCH_*.json` naming convention
//! and a common `experiment` tag: training baselines
//! ([`crate::baseline::BenchArtifact`], tagged with the experiment
//! name), the serving artifact ([`crate::serve::ServeArtifact`], tagged
//! [`crate::serve::SERVE_EXPERIMENT`]), the kernel scoreboard
//! ([`crate::kernels::KernelsArtifact`], tagged
//! [`crate::kernels::KERNELS_EXPERIMENT`]), and the campaign aggregate
//! ([`crate::sweep::SweepArtifact`], tagged
//! [`crate::sweep::SWEEP_EXPERIMENT`]). `bench compare` classifies
//! both files through [`ArtifactKind::from_experiment`] before picking
//! a comparison, so mixing kinds is a typed error naming both sides
//! rather than a spurious schema mismatch.

use crate::error::ObsError;
use crate::kernels::KERNELS_EXPERIMENT;
use crate::serve::SERVE_EXPERIMENT;
use crate::sweep::SWEEP_EXPERIMENT;

/// Which comparison a `BENCH_*.json` file dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A training baseline (`table1`, `fig1`, ... experiment tags).
    Training,
    /// The serving-path artifact (`experiment: "serve"`).
    Serve,
    /// The kernel scoreboard (`experiment: "kernels"`).
    Kernels,
    /// The campaign-sweep aggregate (`experiment: "sweep"`).
    Sweep,
}

impl ArtifactKind {
    /// Classifies an artifact by its `experiment` tag. Any tag that is
    /// not a reserved artifact-family name is a training experiment.
    pub fn from_experiment(tag: &str) -> ArtifactKind {
        match tag {
            t if t == SERVE_EXPERIMENT => ArtifactKind::Serve,
            t if t == KERNELS_EXPERIMENT => ArtifactKind::Kernels,
            t if t == SWEEP_EXPERIMENT => ArtifactKind::Sweep,
            _ => ArtifactKind::Training,
        }
    }

    /// Human label used in dispatch errors.
    pub fn label(self) -> &'static str {
        match self {
            ArtifactKind::Training => "training baseline",
            ArtifactKind::Serve => "serve artifact",
            ArtifactKind::Kernels => "kernel scoreboard",
            ArtifactKind::Sweep => "sweep aggregate",
        }
    }
}

/// Parses a `BENCH_*.json` artifact with truncation-aware errors — the
/// artifact-file sibling of [`crate::read_events`]'s torn-tail handling.
///
/// A text that is a strict *prefix* of valid JSON (structure still open
/// at end of input, or the file is empty) is the signature of a writer
/// killed between write and rename, and maps to
/// [`ObsError::TruncatedArtifact`]; any other failure is
/// [`ObsError::Parse`] at the line where parsing stopped making sense.
///
/// # Errors
///
/// [`ObsError::TruncatedArtifact`] or [`ObsError::Parse`] as above.
pub fn parse_artifact<T: serde::Deserialize>(text: &str) -> Result<T, ObsError> {
    match serde_json::from_str(text) {
        Ok(value) => Ok(value),
        Err(e) => {
            if looks_truncated(text) {
                Err(ObsError::TruncatedArtifact { message: e.to_string() })
            } else {
                Err(ObsError::Parse {
                    line: line_of_failure(text, &e.to_string()),
                    message: e.to_string(),
                })
            }
        }
    }
}

/// Whether `text` could be the prefix of a valid JSON document: input
/// ran out with a string or bracket structure still open, or before any
/// value at all. A mismatched closer or trailing garbage means corrupt,
/// not truncated.
fn looks_truncated(text: &str) -> bool {
    let mut stack: Vec<u8> = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    for &b in text.as_bytes() {
        if in_string {
            match (escaped, b) {
                (true, _) => escaped = false,
                (false, b'\\') => escaped = true,
                (false, b'"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' | b'[' => stack.push(b),
            // the guard pops unconditionally: a matching closer falls
            // through to the no-op arm with its bracket consumed
            b'}' if stack.pop() != Some(b'{') => return false,
            b']' if stack.pop() != Some(b'[') => return false,
            _ => {}
        }
    }
    in_string || !stack.is_empty() || text.trim().is_empty()
}

/// Best-effort line number for a parse failure: the shim reports `at
/// byte N`, which this converts to a 1-based line.
fn line_of_failure(text: &str, message: &str) -> usize {
    let byte = message
        .rsplit_once("at byte ")
        .and_then(|(_, n)| n.trim().parse::<usize>().ok())
        .unwrap_or(0);
    1 + text.as_bytes().iter().take(byte).filter(|b| **b == b'\n').count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_tags_map_to_their_families() {
        assert_eq!(ArtifactKind::from_experiment("serve"), ArtifactKind::Serve);
        assert_eq!(ArtifactKind::from_experiment("kernels"), ArtifactKind::Kernels);
        assert_eq!(ArtifactKind::from_experiment("sweep"), ArtifactKind::Sweep);
    }

    #[test]
    fn everything_else_is_a_training_experiment() {
        for tag in ["table1", "fig1", "fig2", "ablation", "serve2", "sweeper", ""] {
            assert_eq!(ArtifactKind::from_experiment(tag), ArtifactKind::Training, "{tag}");
        }
    }

    #[test]
    fn truncated_artifacts_get_the_typed_error() {
        let full = r#"{
  "experiment": "sweep",
  "completed": 3,
  "cells": ["a", "b"]
}"#;
        let parsed: serde::Value = parse_artifact(full).unwrap();
        assert!(matches!(parsed.get("completed"), Some(serde::Value::U64(3))));

        // Every strict prefix that dies mid-structure is truncation,
        // not corruption (mirrors a writer killed mid-write).
        for cut in [full.len() - 2, full.len() / 2, 10, 1] {
            let err = parse_artifact::<serde::Value>(&full[..cut]).unwrap_err();
            assert!(
                matches!(err, ObsError::TruncatedArtifact { .. }),
                "prefix of {cut} bytes: {err}"
            );
        }
        let err = parse_artifact::<serde::Value>("").unwrap_err();
        assert!(matches!(err, ObsError::TruncatedArtifact { .. }));
    }

    #[test]
    fn corrupt_artifacts_are_parse_errors_with_a_line() {
        // Balanced but invalid: a mismatched closer.
        let err = parse_artifact::<serde::Value>("{\"a\": ]}").unwrap_err();
        assert!(matches!(err, ObsError::Parse { .. }), "{err}");
        // Trailing garbage after a complete value.
        let err = parse_artifact::<serde::Value>("{}\ngarbage").unwrap_err();
        match err {
            ObsError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            ArtifactKind::Training.label(),
            ArtifactKind::Serve.label(),
            ArtifactKind::Kernels.label(),
            ArtifactKind::Sweep.label(),
        ];
        assert_eq!(labels.iter().collect::<std::collections::BTreeSet<_>>().len(), 4);
    }
}
