//! Artifact-kind dispatch for `bench compare`.
//!
//! Three artifact families share the `BENCH_*.json` naming convention
//! and a common `experiment` tag: training baselines
//! ([`crate::baseline::BenchArtifact`], tagged with the experiment
//! name), the serving artifact ([`crate::serve::ServeArtifact`], tagged
//! [`crate::serve::SERVE_EXPERIMENT`]), and the kernel scoreboard
//! ([`crate::kernels::KernelsArtifact`], tagged
//! [`crate::kernels::KERNELS_EXPERIMENT`]). `bench compare` classifies
//! both files through [`ArtifactKind::from_experiment`] before picking
//! a comparison, so mixing kinds is a typed error naming both sides
//! rather than a spurious schema mismatch.

use crate::kernels::KERNELS_EXPERIMENT;
use crate::serve::SERVE_EXPERIMENT;

/// Which comparison a `BENCH_*.json` file dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A training baseline (`table1`, `fig1`, ... experiment tags).
    Training,
    /// The serving-path artifact (`experiment: "serve"`).
    Serve,
    /// The kernel scoreboard (`experiment: "kernels"`).
    Kernels,
}

impl ArtifactKind {
    /// Classifies an artifact by its `experiment` tag. Any tag that is
    /// not a reserved artifact-family name is a training experiment.
    pub fn from_experiment(tag: &str) -> ArtifactKind {
        match tag {
            t if t == SERVE_EXPERIMENT => ArtifactKind::Serve,
            t if t == KERNELS_EXPERIMENT => ArtifactKind::Kernels,
            _ => ArtifactKind::Training,
        }
    }

    /// Human label used in dispatch errors.
    pub fn label(self) -> &'static str {
        match self {
            ArtifactKind::Training => "training baseline",
            ArtifactKind::Serve => "serve artifact",
            ArtifactKind::Kernels => "kernel scoreboard",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_tags_map_to_their_families() {
        assert_eq!(ArtifactKind::from_experiment("serve"), ArtifactKind::Serve);
        assert_eq!(ArtifactKind::from_experiment("kernels"), ArtifactKind::Kernels);
    }

    #[test]
    fn everything_else_is_a_training_experiment() {
        for tag in ["table1", "fig1", "fig2", "ablation", "serve2", ""] {
            assert_eq!(ArtifactKind::from_experiment(tag), ArtifactKind::Training, "{tag}");
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            ArtifactKind::Training.label(),
            ArtifactKind::Serve.label(),
            ArtifactKind::Kernels.label(),
        ];
        assert_eq!(labels.iter().collect::<std::collections::BTreeSet<_>>().len(), 3);
    }
}
