//! Typed failures of the trace-analysis pipeline.
//!
//! Every consumer (`trace summarize|flame|top|diff`, `bench baseline`)
//! reports malformed input through [`ObsError`] instead of panicking, so
//! a trace torn by a crash mid-write degrades into a diagnosable error.

use std::fmt;

/// Why a trace could not be parsed or analyzed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsError {
    /// A line in the middle of the trace is not a valid event — the
    /// trace is corrupt, not merely truncated.
    Parse {
        /// 1-based line number of the invalid line.
        line: usize,
        /// The underlying parse failure.
        message: String,
    },
    /// The *final* non-blank line is invalid — the signature of a
    /// writer killed mid-line. Distinguished from [`ObsError::Parse`] so
    /// tooling can suggest dropping the tail.
    TruncatedTail {
        /// 1-based line number of the truncated line.
        line: usize,
        /// The underlying parse failure.
        message: String,
    },
    /// The trace holds no events at all; there is nothing to analyze.
    EmptyTrace,
    /// A `span_close` did not match the innermost open span.
    UnbalancedClose {
        /// Sequence number of the offending close event.
        seq: u64,
        /// Path the close event claimed.
        path: String,
        /// Path of the span that was actually open (absent when no span
        /// was open at all).
        expected: Option<String>,
    },
    /// The trace ended with spans still open (killed mid-span).
    UnclosedSpans {
        /// Paths of the spans still open, outermost first.
        open: Vec<String>,
    },
    /// A `BENCH_*.json` artifact file ends mid-value — the signature of
    /// a writer killed between write and rename. The JSON-artifact
    /// sibling of [`ObsError::TruncatedTail`].
    TruncatedArtifact {
        /// The underlying parse failure.
        message: String,
    },
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::Parse { line, message } => {
                write!(f, "invalid trace event at line {line}: {message}")
            }
            ObsError::TruncatedTail { line, message } => write!(
                f,
                "truncated trace: final line {line} is not a complete event ({message}); \
                 the writer was likely killed mid-write"
            ),
            ObsError::EmptyTrace => write!(f, "empty trace: no events to analyze"),
            ObsError::UnbalancedClose { seq, path, expected } => match expected {
                Some(open) => write!(
                    f,
                    "unbalanced spans: close of '{path}' at seq {seq} while '{open}' is the \
                     innermost open span"
                ),
                None => {
                    write!(f, "unbalanced spans: close of '{path}' at seq {seq} with no open span")
                }
            },
            ObsError::UnclosedSpans { open } => {
                write!(
                    f,
                    "unbalanced spans: trace ended with {} span(s) still open: {}",
                    open.len(),
                    open.join(", ")
                )
            }
            ObsError::TruncatedArtifact { message } => write!(
                f,
                "truncated artifact: file ends mid-value ({message}); the writer was \
                 likely killed mid-write — regenerate the artifact"
            ),
        }
    }
}

impl std::error::Error for ObsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_mode() {
        let e = ObsError::TruncatedTail { line: 7, message: "unexpected end".into() };
        assert!(e.to_string().contains("truncated"));
        assert!(e.to_string().contains("line 7"));
        let e =
            ObsError::UnbalancedClose { seq: 3, path: "a/b".into(), expected: Some("a/c".into()) };
        assert!(e.to_string().contains("a/b"));
        assert!(e.to_string().contains("a/c"));
        assert!(ObsError::EmptyTrace.to_string().contains("empty"));
        let e = ObsError::UnclosedSpans { open: vec!["train".into()] };
        assert!(e.to_string().contains("still open"));
        let e = ObsError::TruncatedArtifact { message: "unexpected end of input".into() };
        assert!(e.to_string().contains("truncated artifact"));
        assert!(e.to_string().contains("killed mid-write"));
    }
}
