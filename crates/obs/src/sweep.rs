//! `BENCH_sweep.json`: the campaign-sweep benchmark artifact.
//!
//! Same philosophy as the training and serving baselines: the top-level
//! sections are LOGICAL — each completed cell's row is a pure function
//! of (dataset, method, epsilon, samples, seed), so a campaign that was
//! SIGKILLed and resumed, or whose cells were retried after injected
//! crashes, must produce rows bitwise identical to an uninterrupted
//! run's. How *hard* the campaign had to work to get there (attempts,
//! retries, wall time) is quarantined in `meta`, where [`compare_sweep`]
//! only warns. Quarantined cells are first-class results: their ids are
//! logical (a cell that gave up is a different outcome), while their
//! free-text causes may vary with timing and therefore only warn.

use crate::baseline::{CompareReport, WALL_NOTE};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Schema version for [`SweepArtifact`]; bump on breaking change.
pub const SWEEP_SCHEMA_VERSION: u64 = 1;

/// The experiment tag distinguishing sweep aggregates when
/// `bench compare` dispatches on file contents.
pub const SWEEP_EXPERIMENT: &str = "sweep";

/// Campaign shape: fully determined by the grid spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepScale {
    /// Dataset every cell trained on.
    pub dataset: String,
    /// Epochs per cell.
    pub epochs: u64,
    /// Shared campaign seed.
    pub seed: u64,
    /// Held-out evaluation size per cell.
    pub test_samples: u64,
    /// Trainer axis.
    pub methods: Vec<String>,
    /// Epsilon axis.
    pub epsilons: Vec<f64>,
    /// Training-set-size axis.
    pub samples: Vec<u64>,
    /// Thread-count axis.
    pub threads: Vec<u64>,
}

/// One completed cell's results (logical).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCellRow {
    /// Stable cell id from grid expansion.
    pub id: String,
    /// Trainer name.
    pub method: String,
    /// Perturbation budget.
    pub eps: f64,
    /// Training samples.
    pub samples: u64,
    /// Worker threads the cell ran with (results are thread-invariant;
    /// the axis is recorded so the artifact proves it).
    pub threads: u64,
    /// Final training loss.
    pub final_loss: f64,
    /// Evaluation column names (clean + per-attack).
    pub columns: Vec<String>,
    /// Accuracies aligned with `columns`.
    pub accuracies: Vec<f64>,
}

/// One quarantined cell: id is logical, cause is advisory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineRow {
    /// Stable cell id from grid expansion.
    pub id: String,
    /// Failure cause of the last attempt (may be timing-dependent).
    pub cause: String,
}

/// Wall-clock / effort section: machine-dependent, compare warns only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepMeta {
    /// Total wall time of the campaign, seconds (this process only; a
    /// resumed campaign reports the resuming process's wall).
    pub wall_total_s: f64,
    /// Child attempts spawned across all cells.
    pub attempts_total: u64,
    /// Retries drawn from the campaign-wide budget.
    pub retries_spent: u64,
    /// Standing note about wall-number portability.
    pub note: String,
}

/// The campaign aggregate written by `sweep`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepArtifact {
    /// Always [`SWEEP_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Always [`SWEEP_EXPERIMENT`].
    pub experiment: String,
    /// Campaign shape (logical).
    pub scale: SweepScale,
    /// Cells that completed with a valid report (logical).
    pub completed: u64,
    /// Per-cell results, in grid-expansion order (logical).
    pub cells: Vec<SweepCellRow>,
    /// Cells that exhausted their retry allowance (ids logical).
    pub quarantined: Vec<QuarantineRow>,
    /// Machine-dependent effort numbers, quarantined.
    pub meta: SweepMeta,
}

impl SweepArtifact {
    /// The standing wall-number caveat, for the `meta.note` field.
    pub fn wall_note() -> String {
        WALL_NOTE.to_string()
    }
}

/// Compares two sweep aggregates: logical sections must match exactly;
/// retry effort and quarantine causes only warn.
///
/// Fails on: schema/experiment/scale mismatch, completed count, any
/// per-cell row differing or missing, quarantined id sets differing.
/// Warns on: quarantine causes differing for the same id, candidate
/// retries being nonzero (the environment made the campaign work for
/// its result).
pub fn compare_sweep(baseline: &SweepArtifact, candidate: &SweepArtifact) -> CompareReport {
    let mut report = CompareReport::default();
    let reg = &mut report.regressions;
    if baseline.schema_version != candidate.schema_version {
        reg.push(format!(
            "schema version {} vs {}",
            baseline.schema_version, candidate.schema_version
        ));
    }
    if baseline.experiment != candidate.experiment {
        reg.push(format!("experiment '{}' vs '{}'", baseline.experiment, candidate.experiment));
    }
    if baseline.scale != candidate.scale {
        reg.push(format!("scale {:?} vs {:?}", baseline.scale, candidate.scale));
    }
    if baseline.completed != candidate.completed {
        reg.push(format!("completed cells {} vs {}", baseline.completed, candidate.completed));
    }

    let cand_rows: BTreeMap<&str, &SweepCellRow> =
        candidate.cells.iter().map(|r| (r.id.as_str(), r)).collect();
    for base in &baseline.cells {
        match cand_rows.get(base.id.as_str()) {
            None => reg.push(format!("cell {} missing from candidate", base.id)),
            Some(cand) => {
                if **cand != *base {
                    reg.push(format!(
                        "cell {}: loss {} vs {}, accuracies {:?} vs {:?}",
                        base.id, base.final_loss, cand.final_loss, base.accuracies, cand.accuracies
                    ));
                }
            }
        }
    }
    for cand in &candidate.cells {
        if !baseline.cells.iter().any(|b| b.id == cand.id) {
            reg.push(format!("cell {} absent from baseline", cand.id));
        }
    }

    let cand_quarantine: BTreeMap<&str, &str> =
        candidate.quarantined.iter().map(|q| (q.id.as_str(), q.cause.as_str())).collect();
    for base in &baseline.quarantined {
        match cand_quarantine.get(base.id.as_str()) {
            None => reg.push(format!("quarantined cell {} not quarantined in candidate", base.id)),
            Some(cause) if *cause != base.cause => report.warnings.push(format!(
                "quarantined cell {}: cause '{}' vs '{}' (causes are timing-dependent)",
                base.id, base.cause, cause
            )),
            Some(_) => {}
        }
    }
    for cand in &candidate.quarantined {
        if !baseline.quarantined.iter().any(|b| b.id == cand.id) {
            reg.push(format!("cell {} quarantined only in candidate ({})", cand.id, cand.cause));
        }
    }

    if candidate.meta.retries_spent > 0 {
        report.warnings.push(format!(
            "candidate spent {} retries over {} attempts; results are identical by \
             construction, but the environment was unstable",
            candidate.meta.retries_spent, candidate.meta.attempts_total
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact() -> SweepArtifact {
        SweepArtifact {
            schema_version: SWEEP_SCHEMA_VERSION,
            experiment: SWEEP_EXPERIMENT.to_string(),
            scale: SweepScale {
                dataset: "mnist".to_string(),
                epochs: 2,
                seed: 2019,
                test_samples: 40,
                methods: vec!["vanilla".to_string(), "proposed".to_string()],
                epsilons: vec![0.3],
                samples: vec![32],
                threads: vec![1, 2],
            },
            completed: 3,
            cells: vec![
                SweepCellRow {
                    id: "c000-vanilla-e300m-s32-t1".to_string(),
                    method: "vanilla".to_string(),
                    eps: 0.3,
                    samples: 32,
                    threads: 1,
                    final_loss: 1.5,
                    columns: vec!["clean".to_string(), "fgsm".to_string()],
                    accuracies: vec![0.9, 0.4],
                },
                SweepCellRow {
                    id: "c001-vanilla-e300m-s32-t2".to_string(),
                    method: "vanilla".to_string(),
                    eps: 0.3,
                    samples: 32,
                    threads: 2,
                    final_loss: 1.5,
                    columns: vec!["clean".to_string(), "fgsm".to_string()],
                    accuracies: vec![0.9, 0.4],
                },
                SweepCellRow {
                    id: "c002-proposed-e300m-s32-t1".to_string(),
                    method: "proposed".to_string(),
                    eps: 0.3,
                    samples: 32,
                    threads: 1,
                    final_loss: 1.1,
                    columns: vec!["clean".to_string(), "fgsm".to_string()],
                    accuracies: vec![0.88, 0.7],
                },
            ],
            quarantined: vec![QuarantineRow {
                id: "c003-proposed-e300m-s32-t2".to_string(),
                cause: "exited with code 3".to_string(),
            }],
            meta: SweepMeta {
                wall_total_s: 4.2,
                attempts_total: 7,
                retries_spent: 0,
                note: SweepArtifact::wall_note(),
            },
        }
    }

    #[test]
    fn identical_artifacts_pass_cleanly() {
        let a = artifact();
        let report = compare_sweep(&a, &a);
        assert!(report.passed(), "{:?}", report.regressions);
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn cell_result_drift_is_a_regression() {
        let base = artifact();
        let mut cand = artifact();
        cand.cells[2].accuracies[1] = 0.2;
        let report = compare_sweep(&base, &cand);
        assert!(!report.passed());
        assert!(
            report.regressions.iter().any(|r| r.contains("c002-proposed")),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn missing_and_extra_cells_are_regressions() {
        let base = artifact();
        let mut cand = artifact();
        let moved = cand.cells.remove(1);
        let report = compare_sweep(&base, &cand);
        assert!(report.regressions.iter().any(|r| r.contains("missing from candidate")));
        let mut cand = artifact();
        let mut extra = moved;
        extra.id = "c009-free-e300m-s32-t1".to_string();
        cand.cells.push(extra);
        let report = compare_sweep(&base, &cand);
        assert!(report.regressions.iter().any(|r| r.contains("absent from baseline")));
    }

    #[test]
    fn quarantine_set_is_logical_but_causes_only_warn() {
        let base = artifact();
        let mut cand = artifact();
        cand.quarantined[0].cause = "killed by signal".to_string();
        let report = compare_sweep(&base, &cand);
        assert!(report.passed(), "{:?}", report.regressions);
        assert!(report.warnings.iter().any(|w| w.contains("timing-dependent")));

        let mut cand = artifact();
        cand.quarantined.clear();
        let report = compare_sweep(&base, &cand);
        assert!(!report.passed());
        assert!(report.regressions.iter().any(|r| r.contains("not quarantined in candidate")));

        let mut cand = artifact();
        cand.quarantined.push(QuarantineRow {
            id: "c001-vanilla-e300m-s32-t2".to_string(),
            cause: "cell wall deadline exceeded".to_string(),
        });
        let report = compare_sweep(&base, &cand);
        assert!(!report.passed());
        assert!(report.regressions.iter().any(|r| r.contains("only in candidate")));
    }

    #[test]
    fn retry_effort_only_warns() {
        let base = artifact();
        let mut cand = artifact();
        cand.meta.retries_spent = 3;
        cand.meta.attempts_total = 10;
        cand.meta.wall_total_s = 99.0;
        let report = compare_sweep(&base, &cand);
        assert!(report.passed(), "{:?}", report.regressions);
        assert!(report.warnings.iter().any(|w| w.contains("3 retries")), "{:?}", report.warnings);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let a = artifact();
        let text = serde_json::to_string_pretty(&a).unwrap();
        let back: SweepArtifact = serde_json::from_str(&text).unwrap();
        assert_eq!(a, back);
    }
}
