//! The `BENCH_<experiment>.json` benchmark-baseline artifact: schema,
//! construction helpers, and the regression comparison the CI perf gate
//! runs.
//!
//! The artifact separates **logical** content — experiment identity,
//! scale, per-trainer clock counters, final accuracies, and a digest of
//! the trace's logical projection, all of which must be bitwise stable
//! across machines and thread counts — from a `meta` block holding
//! wall-clock statistics and run conditions. [`compare`] fails only on
//! logical changes; wall drift is annotated as a warning.

use crate::diff::{diff, DiffOptions};
use crate::tree::SpanTree;
use serde::{Deserialize, Serialize};
use simpadv_trace::{Event, FieldValue};
use std::collections::BTreeMap;

/// Artifact schema version; bump on any field change.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// The experiment workload the artifact was produced at (a decoupled
/// copy of `ExperimentScale`, so the observatory does not depend on the
/// core crate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleInfo {
    /// Training images per dataset.
    pub train_samples: u64,
    /// Test images per dataset.
    pub test_samples: u64,
    /// Training epochs.
    pub epochs: u64,
    /// Data/model seed.
    pub seed: u64,
}

/// Logical cost of one trainer, summed over its `train` spans.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainerCost {
    /// Trainer id (the `trainer` field of the `train` span).
    pub trainer: String,
    /// `train` spans attributed to this trainer.
    pub runs: u64,
    /// Epoch spans nested under those runs.
    pub epochs: u64,
    /// Logical forward passes.
    pub forward: u64,
    /// Logical backward passes.
    pub backward: u64,
    /// Logical flops proxy.
    pub flops: u64,
    /// Logical attack steps.
    pub attack_steps: u64,
}

/// Median/min/max over repeat wall measurements (seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WallStats {
    /// Median across repeats.
    pub median_s: f64,
    /// Fastest repeat.
    pub min_s: f64,
    /// Slowest repeat.
    pub max_s: f64,
}

impl WallStats {
    /// Builds the stats from per-repeat samples (zeroes when empty).
    pub fn from_samples(samples: &[f64]) -> WallStats {
        if samples.is_empty() {
            return WallStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        let median_s =
            if sorted.len() % 2 == 1 { sorted[mid] } else { (sorted[mid - 1] + sorted[mid]) / 2.0 };
        WallStats { median_s, min_s: sorted[0], max_s: sorted[sorted.len() - 1] }
    }
}

/// Non-logical run conditions and wall statistics. Nothing in here is
/// ever grounds for a perf-gate failure.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BenchMeta {
    /// `--threads` the run was pinned to (0 = runtime default).
    pub threads: u64,
    /// Cores the producing machine advertised.
    pub threads_available: u64,
    /// `--repeat` count behind the wall statistics.
    pub repeat: u64,
    /// Mean wall seconds per epoch span, across repeats.
    pub wall_per_epoch_s: WallStats,
    /// Total wall seconds across root spans, across repeats.
    pub wall_total_s: WallStats,
    /// Whether every repeat produced a logically identical trace.
    pub repeats_logically_identical: bool,
    /// Standing caveat about interpreting the wall numbers.
    pub note: String,
}

/// The wall-clock caveat every artifact carries (the reference CI
/// container pins the workspace to a single CPU, so wall numbers are
/// indicative only — see DESIGN.md §4 on the measurement environment).
pub const WALL_NOTE: &str = "wall statistics are machine-dependent; the reference container \
     runs on 1 CPU, so gate on the logical counters and treat wall numbers as indicative";

/// One committed benchmark baseline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BenchArtifact {
    /// Schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Experiment name (`table1`, `fig1`, ...).
    pub experiment: String,
    /// Workload the numbers were produced at.
    pub scale: ScaleInfo,
    /// Logical cost per trainer.
    pub trainers: Vec<TrainerCost>,
    /// Final accuracies (or other scalar results), named.
    pub accuracies: Vec<(String, f64)>,
    /// Events in the run's trace.
    pub events: u64,
    /// FNV-1a digest over the trace's logical projection
    /// ([`logical_digest`]).
    pub trace_digest: String,
    /// Non-logical run conditions and wall statistics.
    pub meta: BenchMeta,
}

/// FNV-1a (64-bit) over the JSONL rendering of every event's logical
/// projection ([`Event::without_meta`]), newline-separated. Stable
/// across machines and thread counts whenever the logical stream is.
pub fn logical_digest(events: &[Event]) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for ev in events {
        for byte in ev.without_meta().to_json_line().bytes().chain(std::iter::once(b'\n')) {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    }
    format!("{h:016x}")
}

fn str_field(fields: &[(String, FieldValue)], key: &str) -> Option<String> {
    fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
        FieldValue::Str(s) => Some(s.clone()),
        _ => None,
    })
}

/// Sums the logical cost of every `train` span, grouped by its
/// `trainer` field (spans without one group under `"unknown"`).
pub fn trainer_costs(tree: &SpanTree) -> Vec<TrainerCost> {
    let mut by_trainer: BTreeMap<String, TrainerCost> = BTreeMap::new();
    tree.walk(&mut |node| {
        if node.name != "train" {
            return;
        }
        let id = str_field(&node.fields, "trainer").unwrap_or_else(|| "unknown".to_string());
        let cost = by_trainer
            .entry(id.clone())
            .or_insert_with(|| TrainerCost { trainer: id, ..TrainerCost::default() });
        cost.runs += 1;
        cost.epochs += node.children.iter().filter(|c| c.name == "epoch").count() as u64;
        cost.forward += node.total.forward;
        cost.backward += node.total.backward;
        cost.flops += node.total.flops;
        cost.attack_steps += node.total.attack_steps;
    });
    by_trainer.into_values().collect()
}

/// Wall seconds of every `epoch` span in the tree.
pub fn epoch_walls_s(tree: &SpanTree) -> Vec<f64> {
    let mut out = Vec::new();
    tree.walk(&mut |node| {
        if node.name == "epoch" {
            out.push(node.total.wall_us as f64 / 1e6);
        }
    });
    out
}

/// Total wall seconds across the tree's root spans.
pub fn total_wall_s(tree: &SpanTree) -> f64 {
    tree.roots.iter().map(|r| r.total.wall_us as f64 / 1e6).sum()
}

/// Whether every stream in `repeats` is logically identical to the
/// first (vacuously true below two repeats).
pub fn repeats_logically_identical(repeats: &[Vec<Event>]) -> bool {
    repeats
        .iter()
        .skip(1)
        .all(|r| diff(&repeats[0], r, &DiffOptions::default()).logically_identical())
}

/// Thresholds for [`compare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareOptions {
    /// Median wall-per-epoch drift (percent) above which a warning is
    /// attached.
    pub wall_threshold_pct: f64,
    /// Absolute tolerance for accuracy comparisons (accuracies are
    /// deterministic, but they travel through JSON f64 round-trips).
    pub accuracy_tolerance: f64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions { wall_threshold_pct: 25.0, accuracy_tolerance: 1e-6 }
    }
}

/// The perf gate's verdict: hard logical regressions vs advisory wall
/// drift.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompareReport {
    /// Logical mismatches — any entry fails the gate.
    pub regressions: Vec<String>,
    /// Advisory annotations (wall drift, run-condition differences).
    pub warnings: Vec<String>,
}

impl CompareReport {
    /// Whether the candidate passes the gate.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Renders the report as `bench compare` prints it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.passed() {
            out.push_str("logical content: matches the baseline\n");
        } else {
            out.push_str(&format!("logical regressions: {}\n", self.regressions.len()));
            for r in &self.regressions {
                out.push_str(&format!("  FAIL {r}\n"));
            }
        }
        for w in &self.warnings {
            out.push_str(&format!("  warning: {w}\n"));
        }
        out
    }
}

fn compare_counter(out: &mut Vec<String>, trainer: &str, what: &str, base: u64, cand: u64) {
    if base != cand {
        out.push(format!("trainer '{trainer}': logical {what} changed {base} -> {cand}"));
    }
}

/// Compares a candidate artifact against the committed baseline.
///
/// Fails (an entry in `regressions`) on: schema/experiment/scale
/// mismatches, any per-trainer logical-counter change, accuracy drift
/// beyond tolerance, event-count or trace-digest changes. Warns on:
/// wall-per-epoch drift beyond the threshold, differing thread/repeat
/// run conditions, and non-identical repeats in the candidate.
pub fn compare(
    baseline: &BenchArtifact,
    candidate: &BenchArtifact,
    opts: &CompareOptions,
) -> CompareReport {
    let mut report = CompareReport::default();
    let reg = &mut report.regressions;
    if baseline.schema_version != candidate.schema_version {
        reg.push(format!(
            "schema version {} vs {}",
            baseline.schema_version, candidate.schema_version
        ));
    }
    if baseline.experiment != candidate.experiment {
        reg.push(format!("experiment '{}' vs '{}'", baseline.experiment, candidate.experiment));
    }
    if baseline.scale != candidate.scale {
        reg.push(format!("scale {:?} vs {:?}", baseline.scale, candidate.scale));
    }

    let cand_trainers: BTreeMap<&str, &TrainerCost> =
        candidate.trainers.iter().map(|t| (t.trainer.as_str(), t)).collect();
    for base in &baseline.trainers {
        match cand_trainers.get(base.trainer.as_str()) {
            None => reg.push(format!("trainer '{}' missing from candidate", base.trainer)),
            Some(cand) => {
                compare_counter(reg, &base.trainer, "runs", base.runs, cand.runs);
                compare_counter(reg, &base.trainer, "epochs", base.epochs, cand.epochs);
                compare_counter(reg, &base.trainer, "forward passes", base.forward, cand.forward);
                compare_counter(
                    reg,
                    &base.trainer,
                    "backward passes",
                    base.backward,
                    cand.backward,
                );
                compare_counter(reg, &base.trainer, "flops", base.flops, cand.flops);
                compare_counter(
                    reg,
                    &base.trainer,
                    "attack steps",
                    base.attack_steps,
                    cand.attack_steps,
                );
            }
        }
    }
    for cand in &candidate.trainers {
        if !baseline.trainers.iter().any(|t| t.trainer == cand.trainer) {
            reg.push(format!("trainer '{}' absent from baseline", cand.trainer));
        }
    }

    let cand_acc: BTreeMap<&str, f64> =
        candidate.accuracies.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    for (name, base) in &baseline.accuracies {
        match cand_acc.get(name.as_str()) {
            None => reg.push(format!("accuracy '{name}' missing from candidate")),
            Some(cand) if (cand - base).abs() > opts.accuracy_tolerance => {
                reg.push(format!("accuracy '{name}' changed {base:.6} -> {cand:.6}"));
            }
            Some(_) => {}
        }
    }
    for (name, _) in &candidate.accuracies {
        if !baseline.accuracies.iter().any(|(k, _)| k == name) {
            reg.push(format!("accuracy '{name}' absent from baseline"));
        }
    }

    if baseline.events != candidate.events {
        reg.push(format!("trace event count {} vs {}", baseline.events, candidate.events));
    }
    if baseline.trace_digest != candidate.trace_digest {
        reg.push(format!(
            "trace logical digest {} vs {}",
            baseline.trace_digest, candidate.trace_digest
        ));
    }

    let (bm, cm) = (&baseline.meta, &candidate.meta);
    if !cm.repeats_logically_identical {
        report
            .warnings
            .push("candidate repeats were not logically identical to each other".to_string());
    }
    if bm.threads != cm.threads || bm.threads_available != cm.threads_available {
        report.warnings.push(format!(
            "run conditions differ: threads {}/{} (baseline) vs {}/{} (candidate)",
            bm.threads, bm.threads_available, cm.threads, cm.threads_available
        ));
    }
    let (b_epoch, c_epoch) = (bm.wall_per_epoch_s.median_s, cm.wall_per_epoch_s.median_s);
    if b_epoch > 0.0 {
        let drift_pct = (c_epoch - b_epoch).abs() / b_epoch * 100.0;
        if drift_pct > opts.wall_threshold_pct {
            report.warnings.push(format!(
                "median wall per epoch {:.4}s -> {:.4}s ({}{:.0}%)",
                b_epoch,
                c_epoch,
                if c_epoch >= b_epoch { "+" } else { "-" },
                drift_pct
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::build_tree;
    use simpadv_trace::EventKind;

    fn open(seq: u64, path: &str, trainer: Option<&str>) -> Event {
        let fields = trainer
            .map(|t| vec![("trainer".to_string(), FieldValue::Str(t.to_string()))])
            .unwrap_or_default();
        Event {
            seq,
            kind: EventKind::SpanOpen,
            path: path.into(),
            fields,
            meta: Vec::new(),
            ctx: None,
        }
    }

    fn close(seq: u64, path: &str, wall: u64, forward: u64) -> Event {
        Event {
            seq,
            kind: EventKind::SpanClose,
            path: path.into(),
            fields: vec![
                ("forward".into(), FieldValue::U64(forward)),
                ("backward".into(), FieldValue::U64(forward)),
                ("flops".into(), FieldValue::U64(forward * 100)),
                ("attack_steps".into(), FieldValue::U64(0)),
            ],
            meta: vec![("wall_us".into(), FieldValue::U64(wall))],
            ctx: None,
        }
    }

    fn traced_run() -> Vec<Event> {
        vec![
            open(0, "train", Some("proposed")),
            open(1, "train/epoch", None),
            close(2, "train/epoch", 1_000_000, 4),
            open(3, "train/epoch", None),
            close(4, "train/epoch", 3_000_000, 4),
            close(5, "train", 4_500_000, 8),
        ]
    }

    fn artifact() -> BenchArtifact {
        let events = traced_run();
        let tree = build_tree(&events).expect("balanced");
        BenchArtifact {
            schema_version: BENCH_SCHEMA_VERSION,
            experiment: "table1".into(),
            scale: ScaleInfo { train_samples: 200, test_samples: 100, epochs: 6, seed: 2019 },
            trainers: trainer_costs(&tree),
            accuracies: vec![("mnist/proposed/original".into(), 0.875)],
            events: events.len() as u64,
            trace_digest: logical_digest(&events),
            meta: BenchMeta {
                threads: 1,
                threads_available: 1,
                repeat: 1,
                wall_per_epoch_s: WallStats::from_samples(&epoch_walls_s(&tree)),
                wall_total_s: WallStats::from_samples(&[total_wall_s(&tree)]),
                repeats_logically_identical: true,
                note: WALL_NOTE.to_string(),
            },
        }
    }

    #[test]
    fn trainer_costs_group_and_count_epochs() {
        let tree = build_tree(&traced_run()).expect("balanced");
        let costs = trainer_costs(&tree);
        assert_eq!(costs.len(), 1);
        assert_eq!(costs[0].trainer, "proposed");
        assert_eq!(costs[0].runs, 1);
        assert_eq!(costs[0].epochs, 2);
        assert_eq!(costs[0].forward, 8);
        assert_eq!(costs[0].flops, 800);
    }

    #[test]
    fn wall_stats_median_min_max() {
        let s = WallStats::from_samples(&[3.0, 1.0, 2.0]);
        assert_eq!((s.median_s, s.min_s, s.max_s), (2.0, 1.0, 3.0));
        let s = WallStats::from_samples(&[4.0, 2.0]);
        assert_eq!(s.median_s, 3.0);
        assert_eq!(WallStats::from_samples(&[]), WallStats::default());
    }

    #[test]
    fn digest_ignores_meta_but_tracks_logical_change() {
        let a = traced_run();
        let mut wall_shift = a.clone();
        wall_shift[5].meta = vec![("wall_us".into(), FieldValue::U64(9))];
        assert_eq!(logical_digest(&a), logical_digest(&wall_shift));
        let mut flops_shift = a.clone();
        flops_shift[5].fields[2] = ("flops".into(), FieldValue::U64(801));
        assert_ne!(logical_digest(&a), logical_digest(&flops_shift));
    }

    #[test]
    fn artifact_round_trips_through_json() {
        let a = artifact();
        let text = serde_json::to_string(&a).expect("serializable");
        let back: BenchArtifact = serde_json::from_str(&text).expect("parseable");
        assert_eq!(a, back);
    }

    #[test]
    fn self_comparison_passes() {
        let a = artifact();
        let r = compare(&a, &a, &CompareOptions::default());
        assert!(r.passed(), "{:?}", r.regressions);
        assert!(r.warnings.is_empty());
    }

    #[test]
    fn planted_logical_counter_regression_fails_the_gate() {
        let base = artifact();
        let mut cand = base.clone();
        cand.trainers[0].flops += 1;
        let r = compare(&base, &cand, &CompareOptions::default());
        assert!(!r.passed());
        assert!(r.regressions.iter().any(|m| m.contains("flops")), "{:?}", r.regressions);
        assert!(r.render().contains("FAIL"));
    }

    #[test]
    fn accuracy_drift_fails_and_wall_drift_warns() {
        let base = artifact();
        let mut cand = base.clone();
        cand.accuracies[0].1 += 0.01;
        cand.meta.wall_per_epoch_s.median_s *= 2.0;
        let r = compare(&base, &cand, &CompareOptions::default());
        assert!(r.regressions.iter().any(|m| m.contains("accuracy")));
        assert!(r.warnings.iter().any(|m| m.contains("wall per epoch")));
    }

    #[test]
    fn scale_and_experiment_mismatches_fail() {
        let base = artifact();
        let mut cand = base.clone();
        cand.experiment = "fig1".into();
        cand.scale.epochs = 7;
        let r = compare(&base, &cand, &CompareOptions::default());
        assert!(r.regressions.len() >= 2);
    }

    #[test]
    fn missing_and_extra_trainers_fail() {
        let base = artifact();
        let mut cand = base.clone();
        cand.trainers[0].trainer = "atda".into();
        let r = compare(&base, &cand, &CompareOptions::default());
        assert!(r.regressions.iter().any(|m| m.contains("missing from candidate")));
        assert!(r.regressions.iter().any(|m| m.contains("absent from baseline")));
    }

    #[test]
    fn repeat_identity_check_spots_divergence() {
        let a = traced_run();
        let mut b = a.clone();
        b[5].fields[0] = ("forward".into(), FieldValue::U64(9));
        assert!(repeats_logically_identical(&[a.clone(), a.clone()]));
        assert!(!repeats_logically_identical(&[a, b]));
    }
}
