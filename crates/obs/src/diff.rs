//! `trace diff A B`: the executable determinism line.
//!
//! Logical content — event kinds, paths, `fields`, sequence numbers,
//! i.e. everything [`Event::without_meta`] keeps — must be **bitwise
//! identical** between the two traces; any difference is a hard failure
//! the CLI turns into a non-zero exit. Wall-clock content lives in
//! `meta` and is only *annotated*: per-path wall totals drifting beyond
//! a configurable threshold produce warnings, never failures.

use simpadv_trace::{Event, EventKind, FieldValue};
use std::collections::BTreeMap;

/// Thresholds for the advisory wall-time comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// Relative drift (percent) above which a span path's wall total is
    /// flagged.
    pub wall_threshold_pct: f64,
    /// Ignore paths whose larger wall total is below this floor —
    /// microsecond spans drift wildly in relative terms and mean nothing.
    pub min_wall_us: u64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions { wall_threshold_pct: 25.0, min_wall_us: 1_000 }
    }
}

/// How many logical mismatches are described in detail (the total is
/// always exact).
const MAX_DETAILS: usize = 10;

/// The structured outcome of a trace comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Events in trace A.
    pub events_a: usize,
    /// Events in trace B.
    pub events_b: usize,
    /// Descriptions of the first [`MAX_DETAILS`] logical mismatches.
    pub logical: Vec<String>,
    /// Exact count of logical mismatches (length differences included).
    pub logical_total: usize,
    /// Advisory wall-drift annotations.
    pub wall_warnings: Vec<String>,
}

impl DiffReport {
    /// Whether the two traces carry identical logical content — the
    /// pass/fail verdict of `trace diff`.
    pub fn logically_identical(&self) -> bool {
        self.logical_total == 0
    }

    /// Renders the report as `trace diff` prints it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace A: {} events, trace B: {} events\n",
            self.events_a, self.events_b
        ));
        if self.logically_identical() {
            out.push_str("logical content: identical\n");
        } else {
            out.push_str(&format!("logical content: {} difference(s)\n", self.logical_total));
            for d in &self.logical {
                out.push_str(&format!("  {d}\n"));
            }
            if self.logical_total > self.logical.len() {
                out.push_str(&format!(
                    "  ... and {} more\n",
                    self.logical_total - self.logical.len()
                ));
            }
        }
        if self.wall_warnings.is_empty() {
            out.push_str("wall time: within threshold\n");
        } else {
            out.push_str(&format!("wall time: {} drift warning(s)\n", self.wall_warnings.len()));
            for w in &self.wall_warnings {
                out.push_str(&format!("  warning: {w}\n"));
            }
        }
        out
    }
}

fn describe_mismatch(i: usize, a: &Event, b: &Event) -> String {
    let (a, b) = (a.without_meta(), b.without_meta());
    let what = if a.kind != b.kind {
        format!("kind {:?} vs {:?}", a.kind, b.kind)
    } else if a.path != b.path {
        format!("path '{}' vs '{}'", a.path, b.path)
    } else if a.seq != b.seq {
        format!("seq {} vs {}", a.seq, b.seq)
    } else {
        format!("fields {:?} vs {:?}", a.fields, b.fields)
    };
    format!("event {i} ({} '{}'): {what}", kind_str(a.kind), a.path)
}

fn kind_str(kind: EventKind) -> &'static str {
    match kind {
        EventKind::SpanOpen => "span_open",
        EventKind::SpanClose => "span_close",
        EventKind::Counter => "counter",
        EventKind::Gauge => "gauge",
        EventKind::Histogram => "histogram",
    }
}

fn wall_us(ev: &Event) -> u64 {
    ev.meta
        .iter()
        .find(|(k, _)| k == "wall_us")
        .and_then(|(_, v)| match v {
            FieldValue::U64(n) => Some(*n),
            _ => None,
        })
        .unwrap_or(0)
}

/// Per-path wall totals over the `span_close` events of a stream.
fn wall_totals(events: &[Event]) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for ev in events {
        if ev.kind == EventKind::SpanClose {
            *out.entry(ev.path.clone()).or_insert(0) += wall_us(ev);
        }
    }
    out
}

/// Compares two event streams: exact on logical content, advisory on
/// wall time. Never fails — malformed traces are the reader's problem;
/// empty and unbalanced streams compare fine.
pub fn diff(a: &[Event], b: &[Event], opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport { events_a: a.len(), events_b: b.len(), ..DiffReport::default() };

    for (i, (ea, eb)) in a.iter().zip(b.iter()).enumerate() {
        if ea.without_meta() != eb.without_meta() {
            report.logical_total += 1;
            if report.logical.len() < MAX_DETAILS {
                report.logical.push(describe_mismatch(i, ea, eb));
            }
        }
    }
    let (longer, shorter, which) =
        if a.len() >= b.len() { (a.len(), b.len(), "A") } else { (b.len(), a.len(), "B") };
    if longer != shorter {
        report.logical_total += longer - shorter;
        if report.logical.len() < MAX_DETAILS {
            report.logical.push(format!(
                "trace {which} has {} extra event(s) past index {shorter}",
                longer - shorter
            ));
        }
    }

    let (wa, wb) = (wall_totals(a), wall_totals(b));
    let mut paths: Vec<&String> = wa.keys().chain(wb.keys()).collect();
    paths.sort();
    paths.dedup();
    for path in paths {
        let (ta, tb) = (*wa.get(path).unwrap_or(&0), *wb.get(path).unwrap_or(&0));
        if ta.max(tb) < opts.min_wall_us {
            continue;
        }
        let drift_pct =
            if ta == 0 { f64::INFINITY } else { (tb as f64 - ta as f64).abs() / ta as f64 * 100.0 };
        if drift_pct > opts.wall_threshold_pct {
            report.wall_warnings.push(format!(
                "{path}: wall {:.3}ms -> {:.3}ms ({}{:.0}%)",
                ta as f64 / 1e3,
                tb as f64 / 1e3,
                if tb >= ta { "+" } else { "-" },
                if drift_pct.is_finite() { drift_pct } else { 100.0 }
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, kind: EventKind, path: &str, flops: u64, wall: u64) -> Event {
        Event {
            seq,
            kind,
            path: path.into(),
            fields: vec![("flops".into(), FieldValue::U64(flops))],
            meta: vec![("wall_us".into(), FieldValue::U64(wall))],
            ctx: None,
        }
    }

    #[test]
    fn identical_logical_content_passes_despite_wall_differences() {
        let a =
            vec![ev(0, EventKind::SpanOpen, "t", 0, 0), ev(1, EventKind::SpanClose, "t", 5, 2000)];
        let mut b = a.clone();
        b[1].meta = vec![("wall_us".into(), FieldValue::U64(2100))];
        let r = diff(&a, &b, &DiffOptions::default());
        assert!(r.logically_identical());
        assert!(r.wall_warnings.is_empty(), "5% drift is under the default threshold");
        assert!(r.render().contains("identical"));
    }

    #[test]
    fn logical_counter_change_is_a_difference() {
        let a = vec![ev(0, EventKind::SpanClose, "t", 5, 1000)];
        let mut b = a.clone();
        b[0].fields = vec![("flops".into(), FieldValue::U64(6))];
        let r = diff(&a, &b, &DiffOptions::default());
        assert_eq!(r.logical_total, 1);
        assert!(!r.logically_identical());
        assert!(r.logical[0].contains("fields"));
    }

    #[test]
    fn length_mismatch_counts_every_extra_event() {
        let a = vec![ev(0, EventKind::SpanOpen, "t", 0, 0)];
        let b = [
            a.clone(),
            vec![ev(1, EventKind::SpanClose, "t", 0, 0), ev(2, EventKind::Counter, "c", 0, 0)],
        ]
        .concat();
        let r = diff(&a, &b, &DiffOptions::default());
        assert_eq!(r.logical_total, 2);
        assert!(r.logical.iter().any(|d| d.contains("trace B has 2 extra")));
    }

    #[test]
    fn wall_drift_beyond_threshold_warns_but_does_not_fail() {
        let a = vec![ev(0, EventKind::SpanClose, "t", 5, 10_000)];
        let mut b = a.clone();
        b[0].meta = vec![("wall_us".into(), FieldValue::U64(20_000))];
        let r = diff(&a, &b, &DiffOptions::default());
        assert!(r.logically_identical());
        assert_eq!(r.wall_warnings.len(), 1);
        assert!(r.wall_warnings[0].contains("+100%"));
        assert!(r.render().contains("warning"));
    }

    #[test]
    fn tiny_spans_are_exempt_from_wall_warnings() {
        let a = vec![ev(0, EventKind::SpanClose, "t", 5, 10)];
        let mut b = a.clone();
        b[0].meta = vec![("wall_us".into(), FieldValue::U64(900))];
        let r = diff(&a, &b, &DiffOptions::default());
        assert!(r.wall_warnings.is_empty(), "both totals are under min_wall_us");
    }

    #[test]
    fn empty_traces_compare_clean() {
        let r = diff(&[], &[], &DiffOptions::default());
        assert!(r.logically_identical());
        assert!(r.wall_warnings.is_empty());
    }

    #[test]
    fn self_comparison_is_always_empty() {
        let a = vec![
            ev(0, EventKind::SpanOpen, "t", 0, 0),
            ev(1, EventKind::Gauge, "t/loss", 3, 0),
            ev(2, EventKind::SpanClose, "t", 9, 5000),
        ];
        let r = diff(&a, &a, &DiffOptions::default());
        assert!(r.logically_identical());
        assert!(r.wall_warnings.is_empty());
    }
}
