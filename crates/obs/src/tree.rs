//! Span-tree reconstruction and cost attribution.
//!
//! A JSONL trace is a flat, well-nested stream of `span_open` /
//! `span_close` events (the tracer emits from a single orchestrator
//! thread and suppresses workers, so nesting is guaranteed for healthy
//! traces). This module rebuilds the tree, attaches each span's cost
//! vector — wall microseconds from `meta`, logical counters from
//! `fields` — and derives **self** cost (a span's total minus its
//! children's totals), the quantity flamegraphs and hot-spot tables are
//! built from.

use crate::error::ObsError;
use simpadv_trace::{Event, EventKind, FieldValue};
use std::collections::BTreeMap;

/// The cost a span accumulated while open: one non-logical wall reading
/// plus the four logical clock counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostVector {
    /// Wall microseconds (non-logical: from event `meta`).
    pub wall_us: u64,
    /// Model forward passes (logical).
    pub forward: u64,
    /// Model backward passes (logical).
    pub backward: u64,
    /// Multiply-accumulate proxy (logical).
    pub flops: u64,
    /// Signed-gradient attack steps (logical).
    pub attack_steps: u64,
}

impl CostVector {
    /// Adds `other` into `self`, counter-wise.
    pub fn add(&mut self, other: &CostVector) {
        self.wall_us += other.wall_us;
        self.forward += other.forward;
        self.backward += other.backward;
        self.flops += other.flops;
        self.attack_steps += other.attack_steps;
    }

    /// Counter-wise `self - other`, saturating at zero (children's
    /// truncated wall readings can never drive a parent negative).
    pub fn saturating_sub(&self, other: &CostVector) -> CostVector {
        CostVector {
            wall_us: self.wall_us.saturating_sub(other.wall_us),
            forward: self.forward.saturating_sub(other.forward),
            backward: self.backward.saturating_sub(other.backward),
            flops: self.flops.saturating_sub(other.flops),
            attack_steps: self.attack_steps.saturating_sub(other.attack_steps),
        }
    }

    /// Total gradient work: forward plus backward passes.
    pub fn work(&self) -> u64 {
        self.forward + self.backward
    }

    /// Flops per wall second — the throughput figure. Like every
    /// wall-derived number it is non-logical ("meta"): never compare it
    /// across machines or thread counts for a determinism check.
    pub fn flops_per_sec(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        self.flops as f64 / (self.wall_us as f64 / 1e6)
    }
}

fn field_u64(pairs: &[(String, FieldValue)], key: &str) -> u64 {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            FieldValue::U64(n) => Some(*n),
            _ => None,
        })
        .unwrap_or(0)
}

fn close_cost(ev: &Event) -> CostVector {
    CostVector {
        wall_us: field_u64(&ev.meta, "wall_us"),
        forward: field_u64(&ev.fields, "forward"),
        backward: field_u64(&ev.fields, "backward"),
        flops: field_u64(&ev.fields, "flops"),
        attack_steps: field_u64(&ev.fields, "attack_steps"),
    }
}

/// One reconstructed span occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Leaf name (the last path segment this span contributed; may
    /// itself contain `/` — e.g. the resilience store's
    /// `checkpoint/save` span).
    pub name: String,
    /// Full `/`-joined path as emitted.
    pub path: String,
    /// Sequence number of the `span_open` event.
    pub open_seq: u64,
    /// The open event's logical fields (trainer id, epoch index, ...).
    pub fields: Vec<(String, FieldValue)>,
    /// Total cost between open and close (children included).
    pub total: CostVector,
    /// Child spans, in emission order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// The span's own cost: total minus the sum of its children's
    /// totals (saturating per counter).
    pub fn self_cost(&self) -> CostVector {
        let mut child = CostVector::default();
        for c in &self.children {
            child.add(&c.total);
        }
        self.total.saturating_sub(&child)
    }
}

/// The reconstructed forest of a trace (traces routinely hold several
/// top-level spans — one `train` per trainer plus evaluation spans).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanTree {
    /// Top-level spans in emission order.
    pub roots: Vec<SpanNode>,
    /// Total events consumed (spans and point events alike).
    pub events: u64,
}

impl SpanTree {
    /// Visits every node depth-first, parents before children.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a SpanNode)) {
        fn go<'a>(node: &'a SpanNode, visit: &mut impl FnMut(&'a SpanNode)) {
            visit(node);
            for c in &node.children {
                go(c, visit);
            }
        }
        for r in &self.roots {
            go(r, visit);
        }
    }
}

/// Rebuilds the span tree from an event stream.
///
/// Counter/gauge/histogram events are counted but do not form nodes.
///
/// # Errors
///
/// * [`ObsError::EmptyTrace`] when `events` holds no events at all;
/// * [`ObsError::UnbalancedClose`] when a `span_close` does not match
///   the innermost open span;
/// * [`ObsError::UnclosedSpans`] when the stream ends mid-span.
pub fn build_tree(events: &[Event]) -> Result<SpanTree, ObsError> {
    if events.is_empty() {
        return Err(ObsError::EmptyTrace);
    }
    let mut roots: Vec<SpanNode> = Vec::new();
    let mut stack: Vec<SpanNode> = Vec::new();
    for ev in events {
        match ev.kind {
            EventKind::SpanOpen => {
                // Leaf name = the open path minus the parent's path; a
                // foreign prefix (defensive) keeps the full path as name.
                let name = match stack.last() {
                    Some(parent)
                        if ev.path.len() > parent.path.len() + 1
                            && ev.path.starts_with(&parent.path)
                            && ev.path.as_bytes()[parent.path.len()] == b'/' =>
                    {
                        ev.path[parent.path.len() + 1..].to_string()
                    }
                    Some(_) => ev.path.clone(),
                    None => ev.path.clone(),
                };
                stack.push(SpanNode {
                    name,
                    path: ev.path.clone(),
                    open_seq: ev.seq,
                    fields: ev.fields.clone(),
                    total: CostVector::default(),
                    children: Vec::new(),
                });
            }
            EventKind::SpanClose => {
                let Some(mut node) = stack.pop() else {
                    return Err(ObsError::UnbalancedClose {
                        seq: ev.seq,
                        path: ev.path.clone(),
                        expected: None,
                    });
                };
                if node.path != ev.path {
                    return Err(ObsError::UnbalancedClose {
                        seq: ev.seq,
                        path: ev.path.clone(),
                        expected: Some(node.path),
                    });
                }
                node.total = close_cost(ev);
                match stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => roots.push(node),
                }
            }
            EventKind::Counter | EventKind::Gauge | EventKind::Histogram => {}
        }
    }
    if !stack.is_empty() {
        return Err(ObsError::UnclosedSpans {
            open: stack.iter().map(|n| n.path.clone()).collect(),
        });
    }
    Ok(SpanTree { roots, events: events.len() as u64 })
}

/// Aggregate attribution for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStat {
    /// Span occurrences at this path.
    pub count: u64,
    /// Summed total cost (children included).
    pub total: CostVector,
    /// Summed self cost (children excluded).
    pub self_cost: CostVector,
}

/// Folds the tree into per-path totals and self costs.
///
/// For every path, `total == self_cost + Σ children totals` holds by
/// construction (saturating on the wall counter).
pub fn attribute(tree: &SpanTree) -> BTreeMap<String, PathStat> {
    let mut out: BTreeMap<String, PathStat> = BTreeMap::new();
    tree.walk(&mut |node| {
        let stat = out.entry(node.path.clone()).or_default();
        stat.count += 1;
        stat.total.add(&node.total);
        stat.self_cost.add(&node.self_cost());
    });
    out
}

/// Sort key for the hot-spot table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopBy {
    /// Self wall microseconds (the default — where time actually went).
    SelfWall,
    /// Total wall microseconds.
    TotalWall,
    /// Self gradient work (forward + backward).
    SelfWork,
    /// Total gradient work.
    TotalWork,
    /// Self flops.
    SelfFlops,
    /// Total flops.
    TotalFlops,
}

impl TopBy {
    /// Parses a `--by` value.
    pub fn parse(s: &str) -> Option<TopBy> {
        match s {
            "self-wall" => Some(TopBy::SelfWall),
            "total-wall" => Some(TopBy::TotalWall),
            "self-work" => Some(TopBy::SelfWork),
            "total-work" => Some(TopBy::TotalWork),
            "self-flops" => Some(TopBy::SelfFlops),
            "total-flops" => Some(TopBy::TotalFlops),
            _ => None,
        }
    }

    fn key(&self, stat: &PathStat) -> u64 {
        match self {
            TopBy::SelfWall => stat.self_cost.wall_us,
            TopBy::TotalWall => stat.total.wall_us,
            TopBy::SelfWork => stat.self_cost.work(),
            TopBy::TotalWork => stat.total.work(),
            TopBy::SelfFlops => stat.self_cost.flops,
            TopBy::TotalFlops => stat.total.flops,
        }
    }
}

/// One row of the hot-spot table.
#[derive(Debug, Clone, PartialEq)]
pub struct HotSpot {
    /// Span path.
    pub path: String,
    /// Its attribution.
    pub stat: PathStat,
}

/// The `limit` hottest paths by `by`, ties broken by path for a
/// deterministic table.
pub fn hot_spots(tree: &SpanTree, by: TopBy, limit: usize) -> Vec<HotSpot> {
    let mut spots: Vec<HotSpot> =
        attribute(tree).into_iter().map(|(path, stat)| HotSpot { path, stat }).collect();
    spots.sort_by(|a, b| by.key(&b.stat).cmp(&by.key(&a.stat)).then(a.path.cmp(&b.path)));
    spots.truncate(limit);
    spots
}

/// Renders the hot-spot table as `trace top` prints it. The throughput
/// column is wall-derived and therefore non-logical (hence the `meta`
/// marker in its header).
pub fn render_top(spots: &[HotSpot]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<44} {:>5} {:>11} {:>11} {:>10} {:>10} {:>12} {:>14}\n",
        "span", "count", "self_ms", "total_ms", "fwd", "bwd", "flops", "mflops/s(meta)"
    ));
    for s in spots {
        out.push_str(&format!(
            "{:<44} {:>5} {:>11.3} {:>11.3} {:>10} {:>10} {:>12} {:>14.1}\n",
            s.path,
            s.stat.count,
            s.stat.self_cost.wall_us as f64 / 1e3,
            s.stat.total.wall_us as f64 / 1e3,
            s.stat.total.forward,
            s.stat.total.backward,
            s.stat.total.flops,
            s.stat.total.flops_per_sec() / 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(seq: u64, path: &str) -> Event {
        Event {
            seq,
            kind: EventKind::SpanOpen,
            path: path.into(),
            fields: Vec::new(),
            meta: Vec::new(),
            ctx: None,
        }
    }

    fn close(seq: u64, path: &str, wall: u64, forward: u64, flops: u64) -> Event {
        Event {
            seq,
            kind: EventKind::SpanClose,
            path: path.into(),
            fields: vec![
                ("forward".into(), FieldValue::U64(forward)),
                ("backward".into(), FieldValue::U64(0)),
                ("flops".into(), FieldValue::U64(flops)),
                ("attack_steps".into(), FieldValue::U64(0)),
            ],
            meta: vec![("wall_us".into(), FieldValue::U64(wall))],
            ctx: None,
        }
    }

    fn sample() -> Vec<Event> {
        vec![
            open(0, "train"),
            open(1, "train/epoch"),
            close(2, "train/epoch", 30, 4, 400),
            open(3, "train/epoch"),
            close(4, "train/epoch", 50, 6, 600),
            close(5, "train", 100, 10, 1000),
        ]
    }

    #[test]
    fn rebuilds_nesting_totals_and_self_cost() {
        let tree = build_tree(&sample()).expect("balanced");
        assert_eq!(tree.roots.len(), 1);
        let train = &tree.roots[0];
        assert_eq!(train.name, "train");
        assert_eq!(train.children.len(), 2);
        assert_eq!(train.total.wall_us, 100);
        let own = train.self_cost();
        assert_eq!(own.wall_us, 100 - 30 - 50);
        assert_eq!(own.forward, 0);
        assert_eq!(own.flops, 0);
        assert_eq!(train.children[1].total.forward, 6);
    }

    #[test]
    fn attribution_aggregates_per_path() {
        let tree = build_tree(&sample()).expect("balanced");
        let attr = attribute(&tree);
        assert_eq!(attr["train/epoch"].count, 2);
        assert_eq!(attr["train/epoch"].total.wall_us, 80);
        assert_eq!(attr["train/epoch"].self_cost.wall_us, 80);
        assert_eq!(attr["train"].self_cost.wall_us, 20);
        // total == self + children, per path family
        assert_eq!(
            attr["train"].total.wall_us,
            attr["train"].self_cost.wall_us + attr["train/epoch"].total.wall_us
        );
    }

    #[test]
    fn multi_segment_leaf_names_survive() {
        let events = vec![
            open(0, "train"),
            open(1, "train/checkpoint/save"),
            close(2, "train/checkpoint/save", 5, 0, 0),
            close(3, "train", 10, 0, 0),
        ];
        let tree = build_tree(&events).expect("balanced");
        assert_eq!(tree.roots[0].children[0].name, "checkpoint/save");
    }

    #[test]
    fn empty_trace_is_typed() {
        assert_eq!(build_tree(&[]), Err(ObsError::EmptyTrace));
    }

    #[test]
    fn single_span_trace_attributes_everything_to_itself() {
        // The degenerate trace one `bench kernels` workload iteration
        // produces: one root span, no children. Total must equal self
        // on every axis, and attribution must carry the full cost.
        let events = vec![open(0, "kernel/matmul"), close(1, "kernel/matmul", 42, 1, 105)];
        let tree = build_tree(&events).expect("balanced");
        assert_eq!(tree.roots.len(), 1);
        let node = &tree.roots[0];
        assert_eq!(node.name, "kernel/matmul");
        assert!(node.children.is_empty());
        assert_eq!(node.total, node.self_cost());
        assert_eq!(node.total.wall_us, 42);
        assert_eq!(node.total.forward, 1);
        assert_eq!(node.total.flops, 105);

        let attr = attribute(&tree);
        assert_eq!(attr.len(), 1);
        let stat = &attr["kernel/matmul"];
        assert_eq!(stat.count, 1);
        assert_eq!(stat.total, stat.self_cost);
        assert_eq!(stat.total.flops, 105);
    }

    #[test]
    fn single_span_with_zero_cost_close_stays_zeroed() {
        // A span that closes without ticking any counter must not
        // invent cost: self == total == zero, and hot_spots still
        // lists it (rank order over one element is trivially stable).
        let events = vec![open(0, "idle"), close(1, "idle", 0, 0, 0)];
        let tree = build_tree(&events).expect("balanced");
        assert_eq!(tree.roots[0].self_cost(), CostVector::default());
        let top = hot_spots(&tree, TopBy::SelfFlops, 10);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].path, "idle");
    }

    #[test]
    fn mismatched_close_is_typed() {
        let events = vec![open(0, "a"), close(1, "b", 1, 0, 0)];
        match build_tree(&events) {
            Err(ObsError::UnbalancedClose { path, expected, .. }) => {
                assert_eq!(path, "b");
                assert_eq!(expected.as_deref(), Some("a"));
            }
            other => panic!("expected UnbalancedClose, got {other:?}"),
        }
    }

    #[test]
    fn close_without_open_is_typed() {
        let events = vec![close(0, "a", 1, 0, 0)];
        assert!(matches!(
            build_tree(&events),
            Err(ObsError::UnbalancedClose { expected: None, .. })
        ));
    }

    #[test]
    fn unclosed_span_is_typed() {
        let events = vec![open(0, "train"), open(1, "train/epoch")];
        match build_tree(&events) {
            Err(ObsError::UnclosedSpans { open }) => {
                assert_eq!(open, vec!["train".to_string(), "train/epoch".to_string()]);
            }
            other => panic!("expected UnclosedSpans, got {other:?}"),
        }
    }

    #[test]
    fn hot_spots_sort_by_requested_key() {
        let tree = build_tree(&sample()).expect("balanced");
        let top = hot_spots(&tree, TopBy::SelfWall, 10);
        assert_eq!(top[0].path, "train/epoch");
        let top = hot_spots(&tree, TopBy::TotalWall, 1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].path, "train");
        let table = render_top(&top);
        assert!(table.contains("train"));
        assert!(table.contains("mflops/s(meta)"));
    }

    #[test]
    fn throughput_is_flops_over_wall_seconds() {
        let c = CostVector { wall_us: 2_000_000, flops: 4_000_000, ..CostVector::default() };
        assert!((c.flops_per_sec() - 2_000_000.0).abs() < 1e-6);
        assert_eq!(CostVector::default().flops_per_sec(), 0.0);
    }

    #[test]
    fn topby_parses_all_keys() {
        for s in ["self-wall", "total-wall", "self-work", "total-work", "self-flops", "total-flops"]
        {
            assert!(TopBy::parse(s).is_some(), "{s}");
        }
        assert!(TopBy::parse("wat").is_none());
    }
}
