//! Dependency-free `--flag value` argument parsing.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for ParseError {}

/// Parsed command line: a subcommand, its positional arguments, and
/// `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
}

impl Args {
    /// Parses `argv` (without the program name).
    ///
    /// Positional arguments (e.g. `trace summarize FILE`) must come
    /// directly after the subcommand, before any `--option`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] when no subcommand is given, an option is
    /// missing its value, or a positional argument appears after options.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, ParseError> {
        let mut it = argv.into_iter();
        let command = it.next().ok_or_else(|| ParseError("missing subcommand".into()))?;
        if command.starts_with("--") {
            return Err(ParseError(format!("expected a subcommand, got option {command}")));
        }
        let mut positionals = Vec::new();
        let mut options = BTreeMap::new();
        while let Some(key) = it.next() {
            let Some(stripped) = key.strip_prefix("--") else {
                if options.is_empty() {
                    positionals.push(key);
                    continue;
                }
                return Err(ParseError(format!("unexpected positional argument {key}")));
            };
            let value = it
                .next()
                .ok_or_else(|| ParseError(format!("option --{stripped} is missing a value")))?;
            options.insert(stripped.to_string(), value);
        }
        Ok(Args { command, positionals, options })
    }

    /// The positional arguments after the subcommand.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The `i`-th positional argument, if present.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Rejects any positional arguments — for subcommands that take none.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] naming the first stray positional.
    pub fn expect_no_positionals(&self) -> Result<(), ParseError> {
        match self.positionals.first() {
            None => Ok(()),
            Some(p) => Err(ParseError(format!(
                "unexpected positional argument {p} for '{}'",
                self.command
            ))),
        }
    }

    /// A string option, or `default` when absent.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map_or(default, String::as_str)
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] when the option is absent.
    pub fn require(&self, key: &str) -> Result<&str, ParseError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ParseError(format!("missing required option --{key}")))
    }

    /// A numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] when present but unparseable.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ParseError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| ParseError(format!("option --{key}: cannot parse '{v}'")))
            }
        }
    }

    /// Rejects unknown options, listing the accepted set.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] naming the first unknown option.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ParseError> {
        for key in self.options.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ParseError(format!(
                    "unknown option --{key} for '{}' (accepted: {})",
                    self.command,
                    allowed.iter().map(|a| format!("--{a}")).collect::<Vec<_>>().join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_subcommand_and_options() {
        let a = Args::parse(argv("train --dataset mnist --epochs 40")).unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.get_or("dataset", "x"), "mnist");
        assert_eq!(a.get_num::<usize>("epochs", 1).unwrap(), 40);
        assert_eq!(a.get_num::<usize>("absent", 7).unwrap(), 7);
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert!(Args::parse(argv("")).is_err());
        assert!(Args::parse(argv("--train x")).is_err());
    }

    #[test]
    fn option_without_value_is_an_error() {
        assert!(Args::parse(argv("train --epochs")).is_err());
    }

    #[test]
    fn positionals_parse_before_options_only() {
        let a = Args::parse(argv("trace summarize out.jsonl --threads 2")).unwrap();
        assert_eq!(a.command, "trace");
        assert_eq!(a.positionals(), ["summarize", "out.jsonl"]);
        assert_eq!(a.positional(0), Some("summarize"));
        assert_eq!(a.positional(2), None);
        assert!(a.expect_no_positionals().is_err());
        // a positional after an option is still an error
        assert!(Args::parse(argv("trace --threads 2 summarize")).is_err());
    }

    #[test]
    fn commands_can_reject_positionals() {
        let a = Args::parse(argv("train mnist")).unwrap();
        assert!(a.expect_no_positionals().is_err());
        let b = Args::parse(argv("train --dataset mnist")).unwrap();
        assert!(b.expect_no_positionals().is_ok());
    }

    #[test]
    fn require_and_expect_only() {
        let a = Args::parse(argv("eval --model m.json")).unwrap();
        assert_eq!(a.require("model").unwrap(), "m.json");
        assert!(a.require("dataset").is_err());
        assert!(a.expect_only(&["model"]).is_ok());
        assert!(a.expect_only(&["other"]).is_err());
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = Args::parse(argv("train --epochs banana")).unwrap();
        assert!(a.get_num::<usize>("epochs", 1).is_err());
    }
}
