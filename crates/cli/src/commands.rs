//! Subcommand implementations.

use crate::args::{Args, ParseError};
use crate::checkpoint::SavedModel;
use simpadv::train::{
    AtdaTrainer, BimAdvTrainer, CheckpointSession, FgsmAdvTrainer, FreeAdvTrainer, ProposedTrainer,
    Trainer, VanillaTrainer,
};
use simpadv::{EvalSuite, ModelSpec, TrainConfig};
use simpadv_attacks::{Attack, Bim, FgmL2, Fgsm, LeastLikelyFgsm, Mim, Pgd, PgdL2, RandomNoise};
use simpadv_data::{ascii_image, SynthConfig, SynthDataset};
use simpadv_resilience::PersistError;
use std::error::Error;
use std::fmt;
use std::io::Write;

/// A CLI failure: bad arguments or a failing operation.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for CliError {}

impl From<ParseError> for CliError {
    fn from(e: ParseError) -> Self {
        CliError(e.0)
    }
}

impl From<Box<dyn Error>> for CliError {
    fn from(e: Box<dyn Error>) -> Self {
        CliError(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

impl From<PersistError> for CliError {
    fn from(e: PersistError) -> Self {
        CliError(e.to_string())
    }
}

impl From<simpadv_obs::ObsError> for CliError {
    fn from(e: simpadv_obs::ObsError) -> Self {
        CliError(e.to_string())
    }
}

/// Usage text printed by `help` and on argument errors.
pub const USAGE: &str = "\
simpadv — simplified adversarial training (Liu et al., 2019 reproduction)

USAGE: simpadv-cli <command> [--option value ...]

COMMANDS
  generate  --dataset mnist|fashion [--samples N] [--seed S] [--preview K]
  train     --dataset mnist|fashion [--method M] [--eps E] [--epochs N]
            [--samples N] [--seed S] [--out FILE] [--checkpoint-dir DIR]
            [--checkpoint-every N] [--resume latest] [--report FILE]
            [--test-samples N]
            methods: vanilla fgsm atda proposed free bim10 bim30
            with --checkpoint-dir, a full training snapshot is written
            every N epochs (default 1); --resume latest continues from
            the newest valid snapshot, bitwise identical to an
            uninterrupted run; --eps overrides the dataset's paper
            epsilon; --report evaluates on a held-out set (--test-samples,
            default 200) and writes a sealed cell report — the completion
            contract sweep cells are judged by
  evaluate  --model FILE --dataset mnist|fashion [--samples N] [--seed S]
  attack    --model FILE --dataset mnist|fashion [--attack A] [--index I]
            attacks: noise fgsm llfgsm bim10 bim30 pgd10 mim10 fgml2 pgdl2
  serve     --model-dir DIR [--addr HOST:PORT] [--batch-max N]
            [--batch-timeout-us N] [--queue-cap N]
            [--watch-interval-us N] [--requests N] [--addr-file FILE]
            batched inference over HTTP with hot-swap: serves the newest
            valid generation in DIR, coalescing up to N requests (or the
            batch timeout) per forward pass, shedding load with 503 when
            the queue is full, and atomically swapping in new checkpoint
            generations as they appear; --requests N exits after N
            answers (absent or 0: serve until killed), --addr-file
            writes the bound address (useful with an ephemeral port 0)
  sweep     --dir DIR [--resume latest] [--dataset mnist|fashion]
            [--methods M,..] [--eps E,..] [--samples-list N,..]
            [--threads-list N,..] [--epochs N] [--seed S]
            [--test-samples N] [--cell-deadline-us N] [--retry-base-us N]
            [--retry-cap-us N] [--max-attempts N] [--retry-budget N]
            [--out FILE] [--bin FILE] [--trace-dir DIR]
            [--chaos-kill-cell-after-us N]
            [--chaos-kill-cell-times N] [--chaos-child-failpoints SPEC]
            run a campaign: the method x eps x samples x threads grid
            expands into cells, each a supervised child `train` process
            with its own checkpoint dir and wall deadline; crashed cells
            retry with capped exponential backoff (seeded jitter),
            resuming from their latest valid checkpoint, until the
            per-cell attempt cap or campaign retry budget quarantines
            them (non-fatal, but reflected in the exit code); campaign
            state is a CRC-sealed generation-numbered manifest saved on
            every transition, so after SIGKILL `sweep --dir D --resume
            latest` continues exactly (grid flags are then ignored);
            writes the BENCH_sweep.json aggregate (default --out), whose
            logical rows are bitwise identical however often the
            campaign was interrupted; chaos flags deliberately kill
            cells or inject child failpoints to prove that;
            --trace-dir enables cross-process campaign tracing: the
            orchestrator's own trace lands in DIR as
            orchestrator.NNN.jsonl (one file per incarnation) and every
            cell attempt writes its own JSONL trace there, stitched
            into one campaign tree by `trace assemble`
  sweep trace DIR [--weight wall|flops|work|attack-steps] [--out FILE]
            assemble a campaign's --trace-dir directory and render the
            unified campaign flamegraph (collapsed-stack), with an
            orphan/salvage summary
  trace assemble DIR [--out FILE] [--project raw|logical]
            stitch the per-process JSONL traces a `sweep --trace-dir`
            campaign left behind into one rooted campaign span tree:
            cell traces graft under their attempt spans via remote
            parent links, cells killed before their first flush appear
            as explicit synthetic orphan nodes, and torn tails are
            salvaged; --project logical applies the attempt-merging
            projection under which a chaos-interrupted and resumed
            campaign is byte-identical to an uninterrupted one
  trace summarize FILE
            fold a JSONL trace into per-span aggregate timings
  trace flame FILE [--weight wall|flops|work|attack-steps] [--out FILE]
            emit an inferno-compatible collapsed-stack flamegraph
  trace top FILE [--by self-wall|total-wall|self-work|total-work|
            self-flops|total-flops] [--limit N]
            rank span paths by self/total cost attribution
  trace diff A B [--wall-threshold PCT]
            compare two traces: logical content must be identical
            (non-zero exit otherwise); wall drift beyond the threshold
            (default 25%) is only warned about
  bench compare BASELINE CANDIDATE [--wall-threshold PCT]
            [--accuracy-tolerance T]
            compare two BENCH_<experiment>.json artifacts (training
            baseline, serve artifact, kernel scoreboard, or sweep
            aggregate — kinds are auto-detected and must match); logical
            regressions exit non-zero, wall drift warns (the CI perf
            gate); truncated artifacts get a typed error
  bench compare --all DIR
            self-gate every BENCH_*.json in DIR: each artifact must
            parse as its detected kind and compare clean against
            itself; prints a per-artifact pass/fail table and exits
            non-zero if any fails
  bench kernels [--scale smoke|quick|full] [--target-us N] [--repeat N]
            [--warmup N] [--out FILE] [--flame-dir DIR]
            run the kernel microbenchmark lab: every hot kernel at real
            experiment shapes; logical counters are gateable, wall
            numbers land in meta (also: cargo run --release -p
            simpadv-bench --bin kernels)
  lint [--root DIR] [--rules SPEC]
            run the workspace invariant wall (rules R1-R12 syntactic,
            S1-S5 semantic; see `simpadv-lint --list`); any diagnostic
            is an error
  lint graph [--root DIR]
            print the workspace call graph in Graphviz DOT format
  help

GLOBAL OPTIONS
  --threads N  worker threads for training/evaluation (default: the
               SIMPADV_THREADS environment variable, else all cores);
               results are bitwise identical for any N
  --trace FILE          write a structured event trace of the run
  --trace-format F      jsonl (default) or pretty; the SIMPADV_TRACE /
                        SIMPADV_TRACE_FORMAT environment variables are
                        the equivalent ambient switches
";

/// Dispatches a parsed command line, writing human output to `out`.
///
/// # Errors
///
/// Returns [`CliError`] on unknown commands, bad options or I/O failures.
pub fn run<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    apply_threads(args)?;
    if !matches!(args.command.as_str(), "trace" | "bench" | "lint" | "sweep") {
        args.expect_no_positionals()?;
    }
    let tracing = apply_trace(args)?;
    let result = match args.command.as_str() {
        "generate" => cmd_generate(args, out),
        "train" => cmd_train(args, out),
        "evaluate" => cmd_evaluate(args, out),
        "attack" => cmd_attack(args, out),
        "serve" => cmd_serve(args, out),
        "sweep" => cmd_sweep(args, out),
        "trace" => cmd_trace(args, out),
        "bench" => cmd_bench(args, out),
        "lint" => cmd_lint(args, out),
        "help" => writeln!(out, "{USAGE}").map_err(CliError::from),
        other => Err(CliError(format!("unknown command '{other}'\n\n{USAGE}"))),
    };
    if tracing {
        // flush the trace even when the command failed
        simpadv_trace::uninstall();
    }
    result
}

/// Applies the global `--threads` option: sets the process-wide worker
/// count every subcommand's training/evaluation runs with. Absent, the
/// runtime falls back to `SIMPADV_THREADS`, then to all cores.
fn apply_threads(args: &Args) -> Result<(), CliError> {
    if let Ok(v) = args.require("threads") {
        let n: usize =
            v.parse().map_err(|_| CliError(format!("option --threads: cannot parse '{v}'")))?;
        simpadv_runtime::try_set_global_threads(n).map_err(|e| CliError(e.to_string()))?;
    }
    Ok(())
}

/// Applies the global `--trace` / `--trace-format` options: installs a
/// file sink for the duration of the dispatched command. Returns whether
/// a sink was installed (so [`run`] knows to flush and remove it).
fn apply_trace(args: &Args) -> Result<bool, CliError> {
    let Ok(path) = args.require("trace") else {
        return Ok(false);
    };
    let name = args.get_or("trace-format", "jsonl");
    let format = simpadv_trace::TraceFormat::parse(name)
        .ok_or_else(|| CliError(format!("unknown trace format '{name}' (jsonl|pretty)")))?;
    simpadv_trace::install_file(std::path::Path::new(path), format)
        .map_err(|e| CliError(format!("cannot open trace file {path}: {e}")))?;
    Ok(true)
}

fn parse_dataset(args: &Args) -> Result<SynthDataset, CliError> {
    match args.require("dataset")? {
        "mnist" => Ok(SynthDataset::Mnist),
        "fashion" => Ok(SynthDataset::Fashion),
        other => Err(CliError(format!("unknown dataset '{other}' (mnist|fashion)"))),
    }
}

fn parse_method(name: &str, eps: f32) -> Result<(Box<dyn Trainer>, &'static str), CliError> {
    Ok(match name {
        "vanilla" => (Box::new(VanillaTrainer::new()), "vanilla"),
        "fgsm" => (Box::new(FgsmAdvTrainer::new(eps)), "fgsm-adv"),
        "atda" => (Box::new(AtdaTrainer::new(eps)), "atda"),
        "proposed" => (Box::new(ProposedTrainer::paper_defaults(eps)), "proposed"),
        "free" => (Box::new(FreeAdvTrainer::new(eps, 4)), "free(4)-adv"),
        "bim10" => (Box::new(BimAdvTrainer::new(eps, 10)), "bim(10)-adv"),
        "bim30" => (Box::new(BimAdvTrainer::new(eps, 30)), "bim(30)-adv"),
        other => return Err(CliError(format!("unknown method '{other}'"))),
    })
}

fn parse_attack(name: &str, eps: f32, seed: u64) -> Result<Box<dyn Attack>, CliError> {
    Ok(match name {
        "noise" => Box::new(RandomNoise::new(eps, seed)),
        "fgsm" => Box::new(Fgsm::new(eps)),
        "llfgsm" => Box::new(LeastLikelyFgsm::new(eps)),
        "bim10" => Box::new(Bim::new(eps, 10)),
        "bim30" => Box::new(Bim::new(eps, 30)),
        "pgd10" => Box::new(Pgd::new(eps, 10, seed)),
        "mim10" => Box::new(Mim::new(eps, 10, 1.0)),
        "fgml2" => Box::new(FgmL2::new(eps * 10.0)), // l2 budgets live on another scale
        "pgdl2" => Box::new(PgdL2::new(eps * 10.0, 10)),
        other => return Err(CliError(format!("unknown attack '{other}'"))),
    })
}

fn cmd_generate<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&[
        "dataset",
        "samples",
        "seed",
        "preview",
        "threads",
        "trace",
        "trace-format",
    ])?;
    let dataset = parse_dataset(args)?;
    let samples = args.get_num("samples", 100usize)?;
    let seed = args.get_num("seed", 1u64)?;
    let preview = args.get_num("preview", 0usize)?;
    let data = dataset.generate(&SynthConfig::new(samples, seed));
    writeln!(
        out,
        "generated {} '{}' images ({} classes, mean intensity {:.3})",
        data.len(),
        dataset.id(),
        data.num_classes(),
        data.images().mean()
    )?;
    for i in 0..preview.min(data.len()) {
        writeln!(out, "label {}:", data.labels()[i])?;
        writeln!(out, "{}", ascii_image(&data.images().row(i)))?;
    }
    Ok(())
}

fn cmd_train<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&[
        "dataset",
        "method",
        "eps",
        "epochs",
        "samples",
        "seed",
        "out",
        "lr",
        "checkpoint-dir",
        "checkpoint-every",
        "resume",
        "report",
        "test-samples",
        "threads",
        "trace",
        "trace-format",
    ])?;
    let dataset = parse_dataset(args)?;
    let eps = parse_eps(args, dataset.paper_epsilon())?;
    let method = args.get_or("method", "proposed").to_string();
    let epochs = args.get_num("epochs", 40usize)?;
    let samples = args.get_num("samples", 1000usize)?;
    let seed = args.get_num("seed", 1u64)?;
    let lr = args.get_num("lr", 0.1f32)?;
    let (mut trainer, method_id) = parse_method(&method, eps)?;
    let mut session = parse_checkpointing(args)?;

    let train = dataset.generate(&SynthConfig::new(samples, seed));
    let spec = ModelSpec::default_mlp();
    let mut clf = spec.build(seed);
    let config = TrainConfig::new(epochs, seed).with_learning_rate(lr).with_lr_decay(0.97);
    writeln!(out, "training {method_id} on {} ({samples} images, {epochs} epochs)", dataset.id())?;
    let report = trainer.train_resumable(&mut clf, &train, &config, &mut session)?;
    writeln!(
        out,
        "final loss {:.4}, {:.3}s/epoch, {:.0} gradient passes/epoch",
        report.final_loss(),
        report.mean_epoch_seconds(),
        report.mean_gradient_passes()
    )?;
    if let Ok(path) = args.require("out") {
        let saved = SavedModel::capture(&spec, &clf, dataset.id(), method_id);
        saved.save_to(path)?;
        writeln!(out, "wrote {path}")?;
    }
    if let Ok(path) = args.require("report") {
        // The sealed cell report is the sweep orchestrator's completion
        // contract: evaluation on a held-out set (disjoint seed), then
        // one atomic, CRC-sealed write. Everything in it is logical, so
        // a retried/resumed cell reproduces the file bit for bit.
        let test_samples = args.get_num("test-samples", 200usize)?;
        let test = dataset.generate(&SynthConfig::new(test_samples, seed + 1));
        let eval = EvalSuite::paper(eps).run(&mut clf, &test);
        let cell = simpadv_sweep::CellReport {
            schema_version: simpadv_sweep::CELL_REPORT_VERSION,
            dataset: dataset.id().to_string(),
            method_id: method.clone(),
            eps,
            epochs: epochs as u64,
            samples: samples as u64,
            test_samples: test_samples as u64,
            seed,
            final_loss: report.final_loss(),
            columns: eval.columns.clone(),
            accuracies: eval.accuracies.clone(),
        };
        cell.save(std::path::Path::new(path)).map_err(|e| CliError(e.to_string()))?;
        writeln!(out, "wrote {path}")?;
    }
    Ok(())
}

/// Parses the optional `--eps` override; absent, the dataset's paper
/// epsilon applies.
fn parse_eps(args: &Args, default: f32) -> Result<f32, CliError> {
    match args.require("eps") {
        Err(_) => Ok(default),
        Ok(v) => {
            let eps: f32 =
                v.parse().map_err(|_| CliError(format!("option --eps: cannot parse '{v}'")))?;
            if !eps.is_finite() || eps < 0.0 {
                return Err(CliError(format!("option --eps: {eps} must be finite and >= 0")));
            }
            Ok(eps)
        }
    }
}

/// Builds the train command's [`CheckpointSession`] from
/// `--checkpoint-dir DIR`, `--checkpoint-every N` and `--resume latest`.
fn parse_checkpointing(args: &Args) -> Result<CheckpointSession, CliError> {
    let resume = match args.require("resume") {
        Ok("latest") => true,
        Ok(other) => {
            return Err(CliError(format!("unknown --resume mode '{other}' (expected: latest)")))
        }
        Err(_) => false,
    };
    match args.require("checkpoint-dir") {
        Ok(dir) => {
            let every = args.get_num("checkpoint-every", 1usize)?;
            Ok(CheckpointSession::new(dir, every)?.with_resume(resume))
        }
        Err(_) if resume => Err(CliError("--resume requires --checkpoint-dir".into())),
        Err(_) => Ok(CheckpointSession::disabled()),
    }
}

fn cmd_evaluate<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&["model", "dataset", "samples", "seed", "threads", "trace", "trace-format"])?;
    let dataset = parse_dataset(args)?;
    let saved = SavedModel::load_from(args.require("model")?)?;
    let mut clf = saved.restore();
    let samples = args.get_num("samples", 400usize)?;
    let seed = args.get_num("seed", 2u64)?;
    let test = dataset.generate(&SynthConfig::new(samples, seed));
    writeln!(
        out,
        "evaluating {} model (trained with {}) on {} x {}",
        saved.spec.id(),
        saved.method,
        dataset.id(),
        samples
    )?;
    let result = EvalSuite::paper(dataset.paper_epsilon()).run(&mut clf, &test);
    writeln!(out, "{result}")?;
    Ok(())
}

fn cmd_attack<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&[
        "model",
        "dataset",
        "attack",
        "index",
        "seed",
        "threads",
        "trace",
        "trace-format",
    ])?;
    let dataset = parse_dataset(args)?;
    let saved = SavedModel::load_from(args.require("model")?)?;
    let mut clf = saved.restore();
    let seed = args.get_num("seed", 3u64)?;
    let index = args.get_num("index", 0usize)?;
    let eps = dataset.paper_epsilon();
    let mut attack = parse_attack(args.get_or("attack", "bim10"), eps, seed)?;

    let data = dataset.generate(&SynthConfig::new(index + 1, seed));
    let x = data.images().rows(index..index + 1);
    let y = vec![data.labels()[index]];
    let adv = attack.perturb(&mut clf, &x, &y);
    let pred_clean = clf.predict(&x)[0];
    let pred_adv = clf.predict(&adv)[0];
    writeln!(out, "true label {}, clean prediction {pred_clean}", y[0])?;
    writeln!(out, "{}", ascii_image(&x.row(0)))?;
    writeln!(
        out,
        "{} (eps {eps}): prediction {pred_adv} ({})",
        attack.id(),
        if pred_adv == y[0] { "still correct" } else { "FOOLED" }
    )?;
    writeln!(out, "{}", ascii_image(&adv.row(0)))?;
    Ok(())
}

/// `serve` — the batched adversarial-aware inference server
/// (`crates/serve`) behind a checkpoint directory.
fn cmd_serve<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&[
        "model-dir",
        "addr",
        "batch-max",
        "batch-timeout-us",
        "queue-cap",
        "watch-interval-us",
        "requests",
        "addr-file",
        "threads",
        "trace",
        "trace-format",
    ])?;
    let model_dir = args.require("model-dir")?;
    let cfg = simpadv_serve::ServeConfig {
        addr: args.get_or("addr", "127.0.0.1:0").to_string(),
        model_dir: std::path::PathBuf::from(model_dir),
        batch: simpadv_serve::BatchConfig {
            batch_max: args.get_num("batch-max", 16usize)?,
            batch_timeout_us: args.get_num("batch-timeout-us", 500u64)?,
            queue_cap: args.get_num("queue-cap", 64usize)?,
        },
        watch_interval_us: args.get_num("watch-interval-us", 200_000u64)?,
    };
    if cfg.batch.batch_max == 0 || cfg.batch.queue_cap == 0 {
        return Err(CliError("--batch-max and --queue-cap must be positive".into()));
    }
    let requests = args.get_num("requests", 0u64)?;
    let server = simpadv_serve::Server::start(cfg).map_err(|e| CliError(e.to_string()))?;
    let bound = server.local_addr();
    writeln!(
        out,
        "serving generation {} ({}) on http://{bound} — POST /predict, GET /healthz, \
         GET /stats, POST /rescan",
        server.engine().current_generation(),
        server.engine().method(),
    )?;
    out.flush()?;
    if let Ok(path) = args.require("addr-file") {
        simpadv_resilience::atomic_write(std::path::Path::new(path), bound.as_bytes())?;
    }
    if requests == 0 {
        // Serve until the process is killed.
        server.wait_served(u64::MAX);
        return Ok(());
    }
    server.wait_served(requests);
    let stats = server.shutdown();
    writeln!(
        out,
        "served {} request(s), {} rejected, {} hot swap(s); shutting down",
        stats.served, stats.rejected, stats.swapped_generations
    )?;
    Ok(())
}

/// `sweep` — the crash-resilient campaign orchestrator
/// (`crates/sweep`): expands a declarative grid into supervised `train`
/// child processes with retry/backoff, quarantine, and a sealed
/// resumable manifest, then writes the `BENCH_sweep.json` aggregate.
fn cmd_sweep<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    match args.positional(0) {
        Some("trace") => return cmd_sweep_trace(args, out),
        Some(other) => {
            return Err(CliError(format!("unknown sweep action '{other}' (trace)")));
        }
        None => {}
    }
    args.expect_only(&[
        "dir",
        "resume",
        "dataset",
        "methods",
        "eps",
        "samples-list",
        "threads-list",
        "epochs",
        "seed",
        "test-samples",
        "cell-deadline-us",
        "retry-base-us",
        "retry-cap-us",
        "max-attempts",
        "retry-budget",
        "out",
        "bin",
        "trace-dir",
        "chaos-kill-cell-after-us",
        "chaos-kill-cell-times",
        "chaos-child-failpoints",
        "threads",
        "trace",
        "trace-format",
    ])?;
    let trace_dir = args.require("trace-dir").ok().map(std::path::PathBuf::from);
    if trace_dir.is_some() && args.require("trace").is_ok() {
        // Both install a process-global sink; the campaign trace owns it.
        return Err(CliError("--trace-dir and --trace are mutually exclusive".into()));
    }
    let dir = std::path::PathBuf::from(args.require("dir")?);
    let resume = match args.require("resume") {
        Ok("latest") => true,
        Ok(other) => {
            return Err(CliError(format!("unknown --resume mode '{other}' (expected: latest)")))
        }
        Err(_) => false,
    };
    let mut campaign = if resume {
        // Grid and retry policy come from the manifest; grid flags on a
        // resume invocation are ignored by design.
        simpadv_sweep::Campaign::resume(&dir).map_err(|e| CliError(e.to_string()))?
    } else {
        let dataset = args.get_or("dataset", "mnist").to_string();
        let default_eps = match dataset.as_str() {
            "fashion" => SynthDataset::Fashion.paper_epsilon(),
            _ => SynthDataset::Mnist.paper_epsilon(),
        };
        let epsilons = match args.require("eps") {
            Ok(list) => simpadv_sweep::grid::parse_f32_list(list).map_err(CliError)?,
            Err(_) => vec![default_eps],
        };
        let defaults = simpadv_sweep::RetryConfig::default();
        let config = simpadv_sweep::CampaignConfig {
            schema_version: simpadv_sweep::MANIFEST_VERSION,
            grid: simpadv_sweep::GridSpec {
                dataset,
                epochs: args.get_num("epochs", 4u64)?,
                seed: args.get_num("seed", 2019u64)?,
                test_samples: args.get_num("test-samples", 100u64)?,
                methods: simpadv_sweep::grid::parse_method_list(
                    args.get_or("methods", "vanilla,proposed"),
                )
                .map_err(CliError)?,
                epsilons,
                samples: simpadv_sweep::grid::parse_u64_list(args.get_or("samples-list", "200"))
                    .map_err(CliError)?,
                threads: simpadv_sweep::grid::parse_u64_list(args.get_or("threads-list", "1"))
                    .map_err(CliError)?,
            },
            retry: simpadv_sweep::RetryConfig {
                base_us: args.get_num("retry-base-us", defaults.base_us)?,
                cap_us: args.get_num("retry-cap-us", defaults.cap_us)?,
                max_attempts: args.get_num("max-attempts", defaults.max_attempts)?,
                budget: args.get_num("retry-budget", defaults.budget)?,
            },
            cell_deadline_us: args.get_num("cell-deadline-us", 600_000_000u64)?,
        };
        simpadv_sweep::Campaign::start(&dir, config).map_err(|e| CliError(e.to_string()))?
    };

    let program = match args.require("bin") {
        Ok(path) => std::path::PathBuf::from(path),
        Err(_) => std::env::current_exe()
            .map_err(|e| CliError(format!("cannot locate own executable for cells: {e}")))?,
    };
    let command = simpadv_sweep::ChildCommand { program, prefix_args: Vec::new() };
    let kill_after_us = args.get_num("chaos-kill-cell-after-us", 0u64)?;
    let chaos = simpadv_sweep::ChaosConfig {
        kill_cell_after_us: (kill_after_us > 0).then_some(kill_after_us),
        kill_cell_times: args.get_num("chaos-kill-cell-times", 1u32)?,
        child_failpoints: args.require("chaos-child-failpoints").ok().map(str::to_string),
    };
    let out_path = std::path::PathBuf::from(args.get_or("out", "BENCH_sweep.json"));
    if let Some(tdir) = &trace_dir {
        std::fs::create_dir_all(tdir)
            .map_err(|e| CliError(format!("cannot create trace dir {}: {e}", tdir.display())))?;
        // One orchestrator trace per incarnation: a resumed campaign
        // takes the next free slot, so lexicographic file order is
        // incarnation order for the collector.
        let slot = orchestrator_trace_path(tdir)?;
        simpadv_trace::install_file(&slot, simpadv_trace::TraceFormat::Jsonl)
            .map_err(|e| CliError(format!("cannot open trace file {}: {e}", slot.display())))?;
        campaign.set_trace_dir(tdir);
    }
    let ran = campaign.run(&command, chaos, &out_path, out);
    if trace_dir.is_some() {
        // Flush and drop the orchestrator sink whatever the outcome —
        // a partial trace is still assemblable (crashed spans and all).
        simpadv_trace::uninstall();
    }
    let artifact = ran.map_err(|e| CliError(e.to_string()))?;
    if artifact.quarantined.is_empty() {
        Ok(())
    } else {
        // Quarantine is not fatal to the campaign, but the exit code
        // must reflect that the aggregate is incomplete.
        Err(CliError(format!("sweep: {} cell(s) quarantined", artifact.quarantined.len())))
    }
}

/// The first free `orchestrator.NNN.jsonl` slot in a campaign trace
/// directory, starting at 001.
fn orchestrator_trace_path(dir: &std::path::Path) -> Result<std::path::PathBuf, CliError> {
    for n in 1..=999u32 {
        let path = dir.join(format!("orchestrator.{n:03}.jsonl"));
        if !path.exists() {
            return Ok(path);
        }
    }
    Err(CliError(format!("{}: no free orchestrator trace slot (999 incarnations?)", dir.display())))
}

/// Reads every `*.jsonl` in a campaign trace directory into the
/// `(file name, content)` pairs [`simpadv_obs::assemble`] stitches.
/// File names (not paths) are the keys, because the orchestrator's
/// `trace_file` anchor fields record bare names.
fn read_trace_dir(dir: &str) -> Result<Vec<(String, String)>, CliError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| CliError(format!("cannot read trace dir {dir}: {e}")))?;
    let mut inputs = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| CliError(format!("cannot list {dir}: {e}")))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !name.ends_with(".jsonl") || !path.is_file() {
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CliError(format!("cannot read trace file {}: {e}", path.display())))?;
        inputs.push((name.to_string(), text));
    }
    if inputs.is_empty() {
        return Err(CliError(format!("no .jsonl trace files in {dir}")));
    }
    Ok(inputs)
}

/// Prints the assembly's stitching summary: inputs consumed, spans
/// auto-closed as crashed, orphan attempts, and salvaged torn tails.
fn write_assembly_summary<W: Write>(
    assembly: &simpadv_obs::Assembly,
    out: &mut W,
) -> Result<(), CliError> {
    writeln!(
        out,
        "assembled {} file(s): {} event(s), {} crashed span(s), {} orphan(s), {} salvaged",
        assembly.files.len(),
        assembly.events.len(),
        assembly.crashed_spans,
        assembly.orphans.len(),
        assembly.salvaged.len(),
    )?;
    for name in &assembly.orphans {
        writeln!(out, "  orphan attempt (died before first flush): {name}")?;
    }
    for name in &assembly.salvaged {
        writeln!(out, "  salvaged torn tail: {name}")?;
    }
    Ok(())
}

/// `sweep trace DIR` — assemble a campaign's `--trace-dir` directory
/// and render the unified campaign flamegraph.
fn cmd_sweep_trace<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&["threads", "trace", "trace-format", "weight", "out"])?;
    let dir =
        args.positional(1).ok_or_else(|| CliError("sweep trace needs a DIR argument".into()))?;
    if args.positional(2).is_some() {
        return Err(CliError("sweep trace takes exactly one DIR".into()));
    }
    let assembly = simpadv_obs::assemble(&read_trace_dir(dir)?)?;
    write_assembly_summary(&assembly, out)?;
    let tree = simpadv_obs::build_tree(&assembly.events)?;
    let name = args.get_or("weight", "wall");
    let weight = simpadv_obs::FlameWeight::parse(name).ok_or_else(|| {
        CliError(format!("unknown weight '{name}' (wall|flops|work|attack-steps)"))
    })?;
    let text = simpadv_obs::render_collapsed(&simpadv_obs::collapse(&tree, weight));
    if let Ok(dest) = args.require("out") {
        simpadv_resilience::atomic_write(std::path::Path::new(dest), text.as_bytes())
            .map_err(|e| CliError(format!("cannot write {dest}: {e}")))?;
        writeln!(out, "wrote {dest}")?;
    } else {
        write!(out, "{text}")?;
    }
    Ok(())
}

/// Reads and strictly parses a JSONL trace, mapping I/O and schema
/// problems (including a torn final line) to [`CliError`].
fn read_trace_events(path: &str) -> Result<Vec<simpadv_trace::Event>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read trace file {path}: {e}")))?;
    Ok(simpadv_obs::read_events(&text)?)
}

/// The single positional FILE of `trace summarize|flame|top`.
fn one_file<'a>(args: &'a Args, action: &str) -> Result<&'a str, CliError> {
    let path = args
        .positional(1)
        .ok_or_else(|| CliError(format!("trace {action} needs a FILE argument")))?;
    if args.positional(2).is_some() {
        return Err(CliError(format!("trace {action} takes exactly one FILE")));
    }
    Ok(path)
}

fn cmd_trace<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&[
        "threads",
        "trace",
        "trace-format",
        "weight",
        "out",
        "by",
        "limit",
        "wall-threshold",
        "project",
    ])?;
    match args.positional(0) {
        Some("assemble") => {
            let dir = args
                .positional(1)
                .ok_or_else(|| CliError("trace assemble needs a DIR argument".into()))?;
            if args.positional(2).is_some() {
                return Err(CliError("trace assemble takes exactly one DIR".into()));
            }
            let assembly = simpadv_obs::assemble(&read_trace_dir(dir)?)?;
            write_assembly_summary(&assembly, out)?;
            let events = match args.get_or("project", "raw") {
                "raw" => assembly.events,
                // The logical projection: attempt spans merged away,
                // checkpoint scaffolding dropped, meta stripped — the
                // form in which chaos+resume equals uninterrupted.
                "logical" => simpadv_obs::normalize(&assembly.events)?,
                other => {
                    return Err(CliError(format!("unknown projection '{other}' (raw|logical)")))
                }
            };
            let mut text = String::new();
            for event in &events {
                text.push_str(&event.to_json_line());
                text.push('\n');
            }
            if let Ok(dest) = args.require("out") {
                simpadv_resilience::atomic_write(std::path::Path::new(dest), text.as_bytes())
                    .map_err(|e| CliError(format!("cannot write {dest}: {e}")))?;
                writeln!(out, "wrote {dest} ({} events)", events.len())?;
            } else {
                write!(out, "{text}")?;
            }
            Ok(())
        }
        Some("summarize") => {
            let events = read_trace_events(one_file(args, "summarize")?)?;
            let mut summary = simpadv_trace::Summary::default();
            for event in &events {
                summary.fold(event);
            }
            write!(out, "{}", summary.render())?;
            Ok(())
        }
        Some("flame") => {
            let path = one_file(args, "flame")?;
            let tree = simpadv_obs::build_tree(&read_trace_events(path)?)?;
            let name = args.get_or("weight", "wall");
            let weight = simpadv_obs::FlameWeight::parse(name).ok_or_else(|| {
                CliError(format!("unknown weight '{name}' (wall|flops|work|attack-steps)"))
            })?;
            let text = simpadv_obs::render_collapsed(&simpadv_obs::collapse(&tree, weight));
            if let Ok(dest) = args.require("out") {
                simpadv_resilience::atomic_write(std::path::Path::new(dest), text.as_bytes())
                    .map_err(|e| CliError(format!("cannot write {dest}: {e}")))?;
                writeln!(out, "wrote {dest}")?;
            } else {
                write!(out, "{text}")?;
            }
            Ok(())
        }
        Some("top") => {
            let path = one_file(args, "top")?;
            let tree = simpadv_obs::build_tree(&read_trace_events(path)?)?;
            let name = args.get_or("by", "self-wall");
            let by = simpadv_obs::TopBy::parse(name).ok_or_else(|| {
                CliError(format!(
                    "unknown ranking '{name}' (self-wall|total-wall|self-work|total-work\
                     |self-flops|total-flops)"
                ))
            })?;
            let limit = args.get_num("limit", 20usize)?;
            write!(out, "{}", simpadv_obs::render_top(&simpadv_obs::hot_spots(&tree, by, limit)))?;
            Ok(())
        }
        Some("diff") => {
            let (Some(path_a), Some(path_b)) = (args.positional(1), args.positional(2)) else {
                return Err(CliError("trace diff needs two FILE arguments".into()));
            };
            if args.positional(3).is_some() {
                return Err(CliError("trace diff takes exactly two FILEs".into()));
            }
            let (a, b) = (read_trace_events(path_a)?, read_trace_events(path_b)?);
            let opts = simpadv_obs::DiffOptions {
                wall_threshold_pct: args.get_num("wall-threshold", 25.0f64)?,
                ..simpadv_obs::DiffOptions::default()
            };
            let report = simpadv_obs::diff(&a, &b, &opts);
            write!(out, "{}", report.render())?;
            if report.logically_identical() {
                Ok(())
            } else {
                Err(CliError(format!(
                    "trace diff: {} logical difference(s) between {path_a} and {path_b}",
                    report.logical_total
                )))
            }
        }
        Some(other) => Err(CliError(format!(
            "unknown trace action '{other}' (assemble|summarize|flame|top|diff)"
        ))),
        None => Err(CliError("usage: trace assemble|summarize|flame|top|diff ...".into())),
    }
}

fn cmd_bench<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&[
        "threads",
        "trace",
        "trace-format",
        "wall-threshold",
        "accuracy-tolerance",
        "all",
        "scale",
        "target-us",
        "repeat",
        "warmup",
        "out",
        "flame-dir",
    ])?;
    match args.positional(0) {
        Some("compare") => cmd_bench_compare(args, out),
        Some("kernels") => cmd_bench_kernels(args, out),
        Some(other) => Err(CliError(format!("unknown bench action '{other}' (compare|kernels)"))),
        None => Err(CliError("usage: bench compare BASELINE CANDIDATE | bench kernels".into())),
    }
}

/// `bench compare` — classify both artifacts by their `experiment` tag
/// ([`simpadv_obs::ArtifactKind`]) and dispatch to the matching logical
/// comparison; mixing kinds is an error naming both sides.
fn cmd_bench_compare<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    if let Ok(dir) = args.require("all") {
        if args.positional(1).is_some() {
            return Err(CliError("bench compare --all DIR takes no positional files".into()));
        }
        return cmd_bench_compare_all(dir, out);
    }
    let (Some(base_path), Some(cand_path)) = (args.positional(1), args.positional(2)) else {
        return Err(CliError("bench compare needs BASELINE and CANDIDATE files".into()));
    };
    if args.positional(3).is_some() {
        return Err(CliError("bench compare takes exactly two files".into()));
    }
    let read_text = |path: &str| -> Result<String, CliError> {
        std::fs::read_to_string(path)
            .map_err(|e| CliError(format!("cannot read artifact {path}: {e}")))
    };
    let (base_text, cand_text) = (read_text(base_path)?, read_text(cand_path)?);
    // Every parse goes through `parse_artifact` so a file torn by a
    // writer killed mid-write surfaces as the typed truncation error
    // rather than a bare syntax failure (or worse, a panic).
    let kind = |text: &str, path: &str| -> Result<simpadv_obs::ArtifactKind, CliError> {
        let value: serde::Value = simpadv_obs::parse_artifact(text)
            .map_err(|e| CliError(format!("invalid bench artifact {path}: {e}")))?;
        let tag = match value.get("experiment") {
            Some(serde::Value::String(s)) => s.as_str(),
            _ => "",
        };
        Ok(simpadv_obs::ArtifactKind::from_experiment(tag))
    };
    let (base_kind, cand_kind) = (kind(&base_text, base_path)?, kind(&cand_text, cand_path)?);
    if base_kind != cand_kind {
        return Err(CliError(format!(
            "bench compare: cannot compare a {} with a {} ({base_path} is a {}, \
             {cand_path} is a {})",
            base_kind.label(),
            cand_kind.label(),
            base_kind.label(),
            cand_kind.label(),
        )));
    }
    let opts = simpadv_obs::CompareOptions {
        wall_threshold_pct: args.get_num("wall-threshold", 25.0f64)?,
        accuracy_tolerance: args.get_num("accuracy-tolerance", 1e-6f64)?,
    };
    let report = match base_kind {
        simpadv_obs::ArtifactKind::Serve => {
            let read = |text: &str, path: &str| -> Result<simpadv_obs::ServeArtifact, CliError> {
                simpadv_obs::parse_artifact(text)
                    .map_err(|e| CliError(format!("invalid serve artifact {path}: {e}")))
            };
            simpadv_obs::compare_serve(&read(&base_text, base_path)?, &read(&cand_text, cand_path)?)
        }
        simpadv_obs::ArtifactKind::Kernels => {
            let read = |text: &str, path: &str| -> Result<simpadv_obs::KernelsArtifact, CliError> {
                simpadv_obs::parse_artifact(text)
                    .map_err(|e| CliError(format!("invalid kernel scoreboard {path}: {e}")))
            };
            simpadv_obs::compare_kernels(
                &read(&base_text, base_path)?,
                &read(&cand_text, cand_path)?,
                &opts,
            )
        }
        simpadv_obs::ArtifactKind::Sweep => {
            let read = |text: &str, path: &str| -> Result<simpadv_obs::SweepArtifact, CliError> {
                simpadv_obs::parse_artifact(text)
                    .map_err(|e| CliError(format!("invalid sweep aggregate {path}: {e}")))
            };
            simpadv_obs::compare_sweep(&read(&base_text, base_path)?, &read(&cand_text, cand_path)?)
        }
        simpadv_obs::ArtifactKind::Training => {
            let read = |text: &str, path: &str| -> Result<simpadv_obs::BenchArtifact, CliError> {
                simpadv_obs::parse_artifact(text)
                    .map_err(|e| CliError(format!("invalid bench artifact {path}: {e}")))
            };
            simpadv_obs::compare(
                &read(&base_text, base_path)?,
                &read(&cand_text, cand_path)?,
                &opts,
            )
        }
    };
    write!(out, "{}", report.render())?;
    if report.passed() {
        Ok(())
    } else {
        Err(CliError(format!(
            "bench compare: {} logical regression(s) vs {base_path}",
            report.regressions.len()
        )))
    }
}

/// `bench compare --all DIR` — self-gate every `BENCH_*.json` in a
/// directory: each artifact must parse as its detected kind and
/// compare clean against itself. This is how CI catches a committed
/// baseline torn by a killed writer, drifted to an old schema, or
/// internally inconsistent, without needing a second artifact.
fn cmd_bench_compare_all<W: Write>(dir: &str, out: &mut W) -> Result<(), CliError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| CliError(format!("cannot read artifact dir {dir}: {e}")))?;
    let mut names = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| CliError(format!("cannot list {dir}: {e}")))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with("BENCH_") && name.ends_with(".json") && path.is_file() {
            names.push(name.to_string());
        }
    }
    if names.is_empty() {
        return Err(CliError(format!("no BENCH_*.json artifacts in {dir}")));
    }
    names.sort();
    let width = names.iter().map(String::len).max().unwrap_or(0).max(8);
    writeln!(out, "{:width$}  {:18}  result", "artifact", "kind")?;
    let mut failures = 0usize;
    for name in &names {
        let path = std::path::Path::new(dir).join(name);
        match self_gate_artifact(&path) {
            Ok(kind) => writeln!(out, "{name:width$}  {:18}  PASS", kind.label())?,
            Err(reason) => {
                failures += 1;
                writeln!(out, "{name:width$}  {:18}  FAIL: {reason}", "?")?;
            }
        }
    }
    if failures == 0 {
        writeln!(out, "{} artifact(s), all pass", names.len())?;
        Ok(())
    } else {
        Err(CliError(format!(
            "bench compare --all: {failures} of {} artifact(s) failed the self-gate",
            names.len()
        )))
    }
}

/// Parses one committed artifact as its detected kind and compares it
/// against itself; any parse or comparison failure is the gate reason.
fn self_gate_artifact(path: &std::path::Path) -> Result<simpadv_obs::ArtifactKind, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let value: serde::Value = simpadv_obs::parse_artifact(&text).map_err(|e| e.to_string())?;
    let tag = match value.get("experiment") {
        Some(serde::Value::String(s)) => s.as_str(),
        _ => "",
    };
    let kind = simpadv_obs::ArtifactKind::from_experiment(tag);
    let opts = simpadv_obs::CompareOptions::default();
    let passed = match kind {
        simpadv_obs::ArtifactKind::Serve => {
            let a: simpadv_obs::ServeArtifact =
                simpadv_obs::parse_artifact(&text).map_err(|e| e.to_string())?;
            simpadv_obs::compare_serve(&a, &a).passed()
        }
        simpadv_obs::ArtifactKind::Kernels => {
            let a: simpadv_obs::KernelsArtifact =
                simpadv_obs::parse_artifact(&text).map_err(|e| e.to_string())?;
            simpadv_obs::compare_kernels(&a, &a, &opts).passed()
        }
        simpadv_obs::ArtifactKind::Sweep => {
            let a: simpadv_obs::SweepArtifact =
                simpadv_obs::parse_artifact(&text).map_err(|e| e.to_string())?;
            simpadv_obs::compare_sweep(&a, &a).passed()
        }
        simpadv_obs::ArtifactKind::Training => {
            let a: simpadv_obs::BenchArtifact =
                simpadv_obs::parse_artifact(&text).map_err(|e| e.to_string())?;
            simpadv_obs::compare(&a, &a, &opts).passed()
        }
    };
    if passed {
        Ok(kind)
    } else {
        Err("self-comparison reports a regression".to_string())
    }
}

/// `bench kernels` — run the kernel microbenchmark lab (see
/// `simpadv_bench::kernels`) and write the scoreboard artifact.
fn cmd_bench_kernels<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    if args.positional(1).is_some() {
        return Err(CliError("bench kernels takes no positional arguments".into()));
    }
    if args.require("trace").is_ok() {
        return Err(CliError(
            "bench kernels records its own in-memory trace; --trace is unsupported".into(),
        ));
    }
    use simpadv_bench::kernels::KernelsOpts;
    let mut opts = KernelsOpts::default();
    opts.target_iter_wall_us = match args.get_or("scale", "quick") {
        "smoke" => 20_000,
        "quick" => 100_000,
        "full" => 500_000,
        other => return Err(CliError(format!("unknown scale '{other}' (smoke|quick|full)"))),
    };
    opts.target_iter_wall_us = args.get_num("target-us", opts.target_iter_wall_us)?;
    opts.repeat = args.get_num("repeat", opts.repeat)?;
    opts.warmup = args.get_num("warmup", opts.warmup)?;
    opts.out = std::path::PathBuf::from(args.get_or("out", "BENCH_kernels.json"));
    if let Ok(dir) = args.require("flame-dir") {
        opts.flame_dir = Some(std::path::PathBuf::from(dir));
    }
    // --threads was already applied process-wide by `run`; record it in
    // the artifact's run conditions.
    if let Ok(v) = args.require("threads") {
        opts.threads = v.parse().ok();
    }
    let (artifact, events) = simpadv_bench::kernels::run_sweep(&opts);
    write!(out, "{}", simpadv_bench::kernels::render_table(&artifact))?;
    simpadv_bench::kernels::write_outputs(&opts, &artifact, &events)
        .map_err(|e| CliError(format!("cannot write kernel scoreboard: {e}")))?;
    writeln!(out, "wrote {}", opts.out.display())?;
    Ok(())
}

/// `lint` — the workspace invariant wall, and `lint graph` — the DOT
/// call-graph export (the same analyses `simpadv-lint` exposes, wired
/// into the umbrella CLI for one-command local checks).
fn cmd_lint<W: Write>(args: &Args, out: &mut W) -> Result<(), CliError> {
    args.expect_only(&["threads", "trace", "trace-format", "root", "rules"])?;
    if args.positional(1).is_some() {
        return Err(CliError("usage: lint [graph] [--root DIR] [--rules SPEC]".into()));
    }
    let root = std::path::PathBuf::from(args.get_or("root", "."));
    let ws = simpadv_lint::collect_files(&root)
        .map_err(|e| CliError(format!("cannot walk {}: {e}", root.display())))?;
    match args.positional(0) {
        Some("graph") => {
            let model = simpadv_lint::semrules::SemanticModel::build(&ws);
            write!(out, "{}", model.graph.to_dot())?;
            Ok(())
        }
        None => {
            let spec = args.require("rules").ok();
            if let Some(s) = spec {
                simpadv_lint::rules::expand_spec(s).map_err(CliError)?;
            }
            let config_path = root.join("lint.toml");
            let cfg = if config_path.exists() {
                let src = std::fs::read_to_string(&config_path)
                    .map_err(|e| CliError(format!("cannot read {}: {e}", config_path.display())))?;
                simpadv_lint::config::parse(&src).map_err(|e| CliError(e.to_string()))?
            } else {
                simpadv_lint::config::Config::default()
            };
            let diags = simpadv_lint::run(&ws, &cfg, spec);
            for d in &diags {
                write!(out, "{}", d.render())?;
            }
            if diags.is_empty() {
                writeln!(out, "lint: {} file(s) analyzed, clean", ws.files.len())?;
                Ok(())
            } else {
                Err(CliError(format!("lint: {} diagnostic(s)", diags.len())))
            }
        }
        Some(other) => Err(CliError(format!("unknown lint action '{other}' (graph)"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &str) -> Result<String, CliError> {
        let args =
            Args::parse(line.split_whitespace().map(str::to_string)).map_err(CliError::from)?;
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let text = run_line("help").unwrap();
        assert!(text.contains("USAGE"));
        assert!(text.contains("proposed"));
    }

    #[test]
    fn unknown_command_fails_with_usage() {
        let err = run_line("frobnicate").unwrap_err();
        assert!(err.to_string().contains("USAGE"));
    }

    #[test]
    fn lint_verb_runs_the_wall_and_exports_the_graph() {
        // Tests run from the crate directory; the workspace root is two up.
        let text = run_line("lint --root ../..").unwrap();
        assert!(text.contains("clean"), "wall output: {text}");
        let dot = run_line("lint graph --root ../..").unwrap();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"));
        let err = run_line("lint prune --root ../..").unwrap_err();
        assert!(err.to_string().contains("unknown lint action"));
    }

    #[test]
    fn generate_with_preview() {
        let text = run_line("generate --dataset mnist --samples 12 --preview 2").unwrap();
        assert!(text.contains("generated 12 'mnist' images"));
        assert!(text.contains("label 0:"));
        assert!(text.contains('#'));
    }

    #[test]
    fn generate_rejects_unknown_dataset_and_option() {
        assert!(run_line("generate --dataset imagenet").is_err());
        assert!(run_line("generate --dataset mnist --bogus 1").is_err());
    }

    #[test]
    fn train_evaluate_attack_roundtrip() {
        let dir = std::env::temp_dir().join("simpadv-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("model.json");
        let model = model.to_str().unwrap();

        let text = run_line(&format!(
            "train --dataset mnist --method vanilla --epochs 2 --samples 80 --out {model}"
        ))
        .unwrap();
        assert!(text.contains("training vanilla"));
        assert!(text.contains("wrote"));

        let text =
            run_line(&format!("evaluate --model {model} --dataset mnist --samples 40")).unwrap();
        assert!(text.contains("original"));
        assert!(text.contains("bim(30)"));

        let text =
            run_line(&format!("attack --model {model} --dataset mnist --attack fgsm --index 1"))
                .unwrap();
        assert!(text.contains("true label 1"));
        assert!(text.contains("fgsm"));
    }

    #[test]
    fn train_rejects_unknown_method() {
        assert!(run_line("train --dataset mnist --method magic").is_err());
    }

    #[test]
    fn threads_option_is_accepted_and_validated() {
        let text = run_line("generate --dataset mnist --samples 4 --threads 2").unwrap();
        assert!(text.contains("generated 4"));
        assert!(run_line("generate --dataset mnist --threads 0").is_err());
        assert!(run_line("generate --dataset mnist --threads lots").is_err());
        assert!(USAGE.contains("--threads"));
        // leave the process-wide default as other tests expect it
        simpadv_runtime::set_global_threads(1);
    }

    #[test]
    fn trace_option_writes_a_summarizable_trace() {
        // the only CLI test that installs a trace sink: the tracer is
        // process-global, so concurrently running tests may interleave
        // events into this trace — assert only on robust properties
        let dir = std::env::temp_dir().join("simpadv-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("out.jsonl");
        let trace = trace.to_str().unwrap();

        let text = run_line(&format!(
            "train --dataset mnist --method proposed --epochs 2 --samples 48 --trace {trace}"
        ))
        .unwrap();
        assert!(text.contains("training proposed"));

        let text = run_line(&format!("trace summarize {trace}")).unwrap();
        assert!(text.contains("events"));
        assert!(text.contains("epoch"), "summary should show the epoch span:\n{text}");
    }

    #[test]
    fn trace_command_rejects_bad_invocations() {
        assert!(run_line("trace summarize /nonexistent/trace.jsonl").is_err());
        assert!(run_line("trace summarize").is_err());
        assert!(run_line("trace frobnicate x.jsonl").is_err());
        assert!(run_line("trace summarize a.jsonl b.jsonl").is_err());
        // a bad format is rejected before any sink is installed
        let path = std::env::temp_dir().join("simpadv-cli-trace-badfmt.jsonl");
        let err = run_line(&format!(
            "generate --dataset mnist --samples 4 --trace {} --trace-format nope",
            path.display()
        ))
        .unwrap_err();
        assert!(err.to_string().contains("unknown trace format"));
        // --trace-format without --trace is inert
        assert!(run_line("generate --dataset mnist --samples 4 --trace-format nope").is_ok());
    }

    #[test]
    fn stray_positionals_are_rejected_per_command() {
        assert!(run_line("generate mnist --dataset mnist --samples 4").is_err());
    }

    #[test]
    fn checkpointed_train_resumes_to_identical_model() {
        let dir = std::env::temp_dir().join("simpadv-cli-resume-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("ckpts");
        let ckpt = ckpt.to_str().unwrap().to_string();
        let straight = dir.join("straight.ckpt");
        let resumed = dir.join("resumed.ckpt");

        // uninterrupted 4-epoch run
        run_line(&format!(
            "train --dataset mnist --method vanilla --epochs 4 --samples 60 --out {}",
            straight.display()
        ))
        .unwrap();
        // 2 epochs with checkpointing, then a fresh process-equivalent
        // invocation resuming to 4
        run_line(&format!(
            "train --dataset mnist --method vanilla --epochs 2 --samples 60 \
             --checkpoint-dir {ckpt} --checkpoint-every 1"
        ))
        .unwrap();
        run_line(&format!(
            "train --dataset mnist --method vanilla --epochs 4 --samples 60 \
             --checkpoint-dir {ckpt} --resume latest --out {}",
            resumed.display()
        ))
        .unwrap();
        let a = SavedModel::load_from(&straight).unwrap();
        let b = SavedModel::load_from(&resumed).unwrap();
        assert_eq!(a.state, b.state, "resumed weights must match the straight run bitwise");
    }

    #[test]
    fn checkpoint_flags_are_validated() {
        assert!(run_line("train --dataset mnist --epochs 1 --samples 16 --resume latest")
            .unwrap_err()
            .to_string()
            .contains("--checkpoint-dir"));
        let dir = std::env::temp_dir().join("simpadv-cli-resume-flags");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(run_line(&format!(
            "train --dataset mnist --epochs 1 --samples 16 \
             --checkpoint-dir {} --resume everything",
            dir.display()
        ))
        .unwrap_err()
        .to_string()
        .contains("unknown --resume mode"));
    }

    fn trace_line(
        seq: u64,
        kind: simpadv_trace::EventKind,
        path: &str,
        flops: u64,
        wall: u64,
    ) -> String {
        use simpadv_trace::{EventKind, FieldValue};
        let (fields, meta) = if kind == EventKind::SpanClose {
            (
                vec![("flops".to_string(), FieldValue::U64(flops))],
                vec![("wall_us".to_string(), FieldValue::U64(wall))],
            )
        } else {
            (Vec::new(), Vec::new())
        };
        simpadv_trace::Event { seq, kind, path: path.to_string(), fields, meta, ctx: None }
            .to_json_line()
    }

    /// A balanced two-epoch trace: train(6000us) > 2x epoch(2000+3000us).
    fn balanced_trace() -> String {
        use simpadv_trace::EventKind::{SpanClose, SpanOpen};
        [
            trace_line(0, SpanOpen, "train", 0, 0),
            trace_line(1, SpanOpen, "train/epoch", 0, 0),
            trace_line(2, SpanClose, "train/epoch", 100, 2000),
            trace_line(3, SpanOpen, "train/epoch", 0, 0),
            trace_line(4, SpanClose, "train/epoch", 200, 3000),
            trace_line(5, SpanClose, "train", 300, 6000),
        ]
        .join("\n")
    }

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("simpadv-cli-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn trace_tools_degrade_into_typed_errors_not_panics() {
        let empty = write_temp("empty.jsonl", "");
        let truncated = write_temp(
            "truncated.jsonl",
            &format!("{}\n{{\"seq\":1,\"ki", balanced_trace().lines().next().unwrap()),
        );
        let unbalanced = write_temp(
            "unbalanced.jsonl",
            &trace_line(0, simpadv_trace::EventKind::SpanOpen, "train", 0, 0),
        );

        // empty: summarize and diff are fine, tree builders refuse
        assert!(run_line(&format!("trace summarize {empty}")).unwrap().contains("0 events"));
        assert!(run_line(&format!("trace diff {empty} {empty}")).is_ok());
        for action in ["flame", "top"] {
            let err = run_line(&format!("trace {action} {empty}")).unwrap_err();
            assert!(err.to_string().contains("empty"), "{action}: {err}");
        }

        // torn final line: every tool reports it, none panics
        for cmd in [
            format!("trace summarize {truncated}"),
            format!("trace flame {truncated}"),
            format!("trace top {truncated}"),
            format!("trace diff {truncated} {truncated}"),
        ] {
            let err = run_line(&cmd).unwrap_err();
            assert!(err.to_string().contains("truncated"), "{cmd}: {err}");
        }

        // unbalanced span pairs: flat folds tolerate, tree builders refuse
        assert!(run_line(&format!("trace summarize {unbalanced}")).is_ok());
        assert!(run_line(&format!("trace diff {unbalanced} {unbalanced}")).is_ok());
        let err = run_line(&format!("trace flame {unbalanced}")).unwrap_err();
        assert!(err.to_string().contains("still open"), "{err}");
    }

    #[test]
    fn flame_root_weights_match_summarize_totals() {
        let trace = write_temp("balanced.jsonl", &balanced_trace());
        let folded = run_line(&format!("trace flame {trace}")).unwrap();
        assert!(!folded.trim().is_empty());
        let totals = simpadv_obs::prefix_totals(&simpadv_obs::parse_collapsed(&folded).unwrap());
        assert_eq!(totals["train"], 6000);
        assert_eq!(totals["train;epoch"], 5000);

        let summary = run_line(&format!("trace summarize {trace}")).unwrap();
        assert!(summary.contains("6.000"), "train total_ms:\n{summary}");
        assert!(summary.contains("5.000"), "train/epoch total_ms:\n{summary}");

        // the hot-spot table ranks epoch above train on self wall
        let top = run_line(&format!("trace top {trace} --by self-wall --limit 1")).unwrap();
        assert!(top.contains("train/epoch"));
        // weight and ranking names are validated
        assert!(run_line(&format!("trace flame {trace} --weight bogus")).is_err());
        assert!(run_line(&format!("trace top {trace} --by bogus")).is_err());
    }

    #[test]
    fn trace_diff_gates_on_logical_content_only() {
        let a = write_temp("diff-a.jsonl", &balanced_trace());
        // wall drift only: passes with warnings at most
        let b = write_temp("diff-b.jsonl", &balanced_trace().replace("6000", "9000"));
        assert!(run_line(&format!("trace diff {a} {b}")).is_ok());
        let relaxed = run_line(&format!("trace diff {a} {b} --wall-threshold 1000")).unwrap();
        assert!(relaxed.contains("within threshold"));
        // logical flops change: non-zero exit naming the count
        let c =
            write_temp("diff-c.jsonl", &balanced_trace().replace("\"flops\":300", "\"flops\":301"));
        let err = run_line(&format!("trace diff {a} {c}")).unwrap_err();
        assert!(err.to_string().contains("1 logical difference"), "{err}");
    }

    #[test]
    fn bench_compare_gates_on_planted_logical_regression() {
        let events = simpadv_obs::read_events(&balanced_trace()).unwrap();
        let tree = simpadv_obs::build_tree(&events).unwrap();
        let artifact = simpadv_obs::BenchArtifact {
            schema_version: simpadv_obs::BENCH_SCHEMA_VERSION,
            experiment: "table1".into(),
            scale: simpadv_obs::ScaleInfo {
                train_samples: 200,
                test_samples: 100,
                epochs: 6,
                seed: 2019,
            },
            trainers: simpadv_obs::baseline::trainer_costs(&tree),
            accuracies: vec![("mnist/proposed/original".into(), 0.875)],
            events: events.len() as u64,
            trace_digest: simpadv_obs::logical_digest(&events),
            meta: simpadv_obs::BenchMeta::default(),
        };
        let base = write_temp("bench-base.json", &serde_json::to_string(&artifact).unwrap());
        assert!(run_line(&format!("bench compare {base} {base}")).is_ok());

        // plant a logical flops regression in the candidate
        let mut planted = artifact.clone();
        planted.trainers[0].flops += 1;
        let cand = write_temp("bench-cand.json", &serde_json::to_string(&planted).unwrap());
        let err = run_line(&format!("bench compare {base} {cand}")).unwrap_err();
        assert!(err.to_string().contains("regression"), "{err}");
        assert!(run_line(&format!("bench compare {base} bogus.json")).is_err());
        assert!(run_line("bench compare only-one.json").is_err());
        assert!(run_line("bench frobnicate").is_err());
    }

    #[test]
    fn serve_flags_are_validated_before_binding() {
        // --model-dir is mandatory
        assert!(run_line("serve").unwrap_err().to_string().contains("model-dir"));
        // zero-sized batch or queue is rejected up front
        let dir = std::env::temp_dir().join("simpadv-cli-serve-flags");
        std::fs::create_dir_all(&dir).unwrap();
        let err =
            run_line(&format!("serve --model-dir {} --batch-max 0", dir.display())).unwrap_err();
        assert!(err.to_string().contains("--batch-max"), "{err}");
        // an empty store refuses to serve with a typed error
        let empty = std::env::temp_dir().join("simpadv-cli-serve-empty");
        let _ = std::fs::remove_dir_all(&empty);
        let err = run_line(&format!("serve --model-dir {}", empty.display())).unwrap_err();
        assert!(err.to_string().contains("no servable model"), "{err}");
        assert!(USAGE.contains("serve"));
    }

    #[test]
    fn bench_compare_dispatches_on_serve_artifacts() {
        let artifact = simpadv_obs::ServeArtifact {
            schema_version: simpadv_obs::SERVE_SCHEMA_VERSION,
            experiment: simpadv_obs::SERVE_EXPERIMENT.to_string(),
            scale: simpadv_obs::ServeScale {
                requests: 8,
                clients: 2,
                samples: 4,
                adv_permille: 250,
                attack: "pgd".into(),
                batch_max: 4,
                queue_cap: 8,
                seed: 2019,
            },
            served: 8,
            skipped_generations: 0,
            generations: vec![simpadv_obs::ServeGenerationRow {
                generation: 1,
                traffic: "clean".into(),
                requests: 8,
                labeled: 8,
                correct: 7,
            }],
            meta: simpadv_obs::ServeMeta {
                threads: 1,
                wall_total_s: 0.5,
                throughput_rps: 16.0,
                latency_p50_us: 100,
                latency_p90_us: 200,
                latency_p99_us: 300,
                latency_max_us: 400,
                batch_occupancy_mean: 2.0,
                batch_occupancy_max: 4,
                rejected: 0,
                note: simpadv_obs::ServeArtifact::wall_note(),
            },
        };
        let base = write_temp("serve-base.json", &serde_json::to_string(&artifact).unwrap());
        assert!(run_line(&format!("bench compare {base} {base}")).is_ok());

        // a logical accuracy regression fails the gate
        let mut planted = artifact.clone();
        planted.generations[0].correct = 1;
        let cand = write_temp("serve-cand.json", &serde_json::to_string(&planted).unwrap());
        let err = run_line(&format!("bench compare {base} {cand}")).unwrap_err();
        assert!(err.to_string().contains("regression"), "{err}");

        // mixing a serve artifact with a training baseline is an error,
        // not a silent pass
        let training = simpadv_obs::BenchArtifact {
            schema_version: simpadv_obs::BENCH_SCHEMA_VERSION,
            experiment: "table1".into(),
            scale: simpadv_obs::ScaleInfo { train_samples: 1, test_samples: 1, epochs: 1, seed: 1 },
            trainers: Vec::new(),
            accuracies: Vec::new(),
            events: 0,
            trace_digest: String::new(),
            meta: simpadv_obs::BenchMeta::default(),
        };
        let other = write_temp("serve-mixed.json", &serde_json::to_string(&training).unwrap());
        let err = run_line(&format!("bench compare {base} {other}")).unwrap_err();
        assert!(err.to_string().contains("cannot compare"), "{err}");
    }

    fn tiny_kernels_artifact() -> simpadv_obs::KernelsArtifact {
        simpadv_obs::KernelsArtifact {
            schema_version: simpadv_obs::KERNELS_SCHEMA_VERSION,
            experiment: simpadv_obs::KERNELS_EXPERIMENT.to_string(),
            workloads: vec![simpadv_obs::KernelRow {
                name: "matmul/2x3x4".into(),
                group: "matmul".into(),
                shape: vec![2, 3, 4],
                flops: 24,
                bytes: 4 * (6 + 12 + 8),
                ..simpadv_obs::KernelRow::default()
            }],
            events: 2,
            trace_digest: "0011223344556677".into(),
            meta: simpadv_obs::KernelsMeta::default(),
        }
    }

    #[test]
    fn bench_compare_dispatches_on_kernel_scoreboards() {
        let artifact = tiny_kernels_artifact();
        let base = write_temp("kernels-base.json", &serde_json::to_string(&artifact).unwrap());
        assert!(run_line(&format!("bench compare {base} {base}")).is_ok());

        // a planted logical flops regression fails the gate
        let mut planted = artifact.clone();
        planted.workloads[0].flops += 1;
        let cand = write_temp("kernels-cand.json", &serde_json::to_string(&planted).unwrap());
        let err = run_line(&format!("bench compare {base} {cand}")).unwrap_err();
        assert!(err.to_string().contains("regression"), "{err}");
    }

    #[test]
    fn bench_compare_mixed_kinds_error_names_both_kinds_and_paths() {
        let kernels = tiny_kernels_artifact();
        let training = simpadv_obs::BenchArtifact {
            schema_version: simpadv_obs::BENCH_SCHEMA_VERSION,
            experiment: "table1".into(),
            scale: simpadv_obs::ScaleInfo { train_samples: 1, test_samples: 1, epochs: 1, seed: 1 },
            trainers: Vec::new(),
            accuracies: Vec::new(),
            events: 0,
            trace_digest: String::new(),
            meta: simpadv_obs::BenchMeta::default(),
        };
        let kpath = write_temp("mixed-kernels.json", &serde_json::to_string(&kernels).unwrap());
        let tpath = write_temp("mixed-training.json", &serde_json::to_string(&training).unwrap());
        let err = run_line(&format!("bench compare {kpath} {tpath}")).unwrap_err().to_string();
        assert!(err.contains("cannot compare"), "{err}");
        assert!(err.contains("kernel scoreboard"), "must name the kernel side: {err}");
        assert!(err.contains("training baseline"), "must name the training side: {err}");
        assert!(err.contains(&kpath), "must name the kernel file: {err}");
        assert!(err.contains(&tpath), "must name the training file: {err}");
        // swapped order still names both
        let err = run_line(&format!("bench compare {tpath} {kpath}")).unwrap_err().to_string();
        assert!(err.contains("training baseline") && err.contains("kernel scoreboard"), "{err}");
    }

    #[test]
    fn bench_kernels_verb_writes_a_comparable_scoreboard() {
        let dir = std::env::temp_dir().join("simpadv-cli-kernels-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_kernels.json");
        let table = run_line(&format!(
            "bench kernels --target-us 200 --repeat 1 --warmup 0 --out {}",
            out.display()
        ))
        .unwrap();
        assert!(table.contains("matmul/64x784x128"), "{table}");
        assert!(table.contains("GFLOP/s"), "{table}");
        let text = std::fs::read_to_string(&out).unwrap();
        let artifact: simpadv_obs::KernelsArtifact = serde_json::from_str(&text).unwrap();
        assert_eq!(artifact.experiment, simpadv_obs::KERNELS_EXPERIMENT);
        // the written artifact self-compares clean through the CLI
        assert!(run_line(&format!("bench compare {} {}", out.display(), out.display())).is_ok());
        // bad flags are rejected
        assert!(run_line("bench kernels --scale bogus").is_err());
        assert!(run_line("bench kernels extra").is_err());
        // a relative path here would leave a stray trace file in the
        // crate directory: the sink installs before the verb rejects it
        let rejected = dir.join("rejected.jsonl");
        assert!(run_line(&format!("bench kernels --trace {}", rejected.display())).is_err());
    }

    #[test]
    fn sweep_grid_methods_match_parse_method() {
        // The sweep grid validates methods against KNOWN_METHODS and
        // then hands them to this CLI's `train` verb; the two lists
        // drifting apart would quarantine every cell of a campaign.
        for name in simpadv_sweep::KNOWN_METHODS {
            assert!(parse_method(name, 0.3).is_ok(), "sweep method '{name}' must train");
        }
        assert!(parse_method("magic", 0.3).is_err());
    }

    #[test]
    fn train_report_writes_a_sealed_cell_report() {
        let dir = std::env::temp_dir().join("simpadv-cli-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let report = dir.join("report.json");

        let text = run_line(&format!(
            "train --dataset mnist --method vanilla --eps 0.25 --epochs 1 --samples 32 \
             --test-samples 16 --report {}",
            report.display()
        ))
        .unwrap();
        assert!(text.contains("wrote"), "{text}");
        let cell = simpadv_sweep::CellReport::load(&report).unwrap();
        assert_eq!(cell.schema_version, simpadv_sweep::CELL_REPORT_VERSION);
        assert_eq!(cell.method_id, "vanilla");
        assert_eq!(cell.eps, 0.25);
        assert_eq!(cell.test_samples, 16);
        assert_eq!(cell.columns[0], "original");
        assert_eq!(cell.columns.len(), cell.accuracies.len());
        assert!(cell.final_loss.is_finite());
    }

    #[test]
    fn train_eps_override_is_validated() {
        assert!(run_line("train --dataset mnist --epochs 1 --samples 16 --eps nope")
            .unwrap_err()
            .to_string()
            .contains("--eps"));
        assert!(run_line("train --dataset mnist --epochs 1 --samples 16 --eps -0.1")
            .unwrap_err()
            .to_string()
            .contains("--eps"));
    }

    #[test]
    fn sweep_flags_are_validated_before_any_child_spawns() {
        // missing campaign dir
        assert!(run_line("sweep").unwrap_err().to_string().contains("dir"));
        let dir = std::env::temp_dir().join("simpadv-cli-sweep-flags");
        let _ = std::fs::remove_dir_all(&dir);
        // bad resume mode
        let err =
            run_line(&format!("sweep --dir {} --resume everything", dir.display())).unwrap_err();
        assert!(err.to_string().contains("unknown --resume mode"), "{err}");
        // unknown method fails before a manifest is written
        let err = run_line(&format!("sweep --dir {} --methods magic", dir.display())).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        // resuming a dir with no campaign is a typed error
        let err = run_line(&format!("sweep --dir {} --resume latest", dir.display())).unwrap_err();
        assert!(err.to_string().contains("no valid campaign manifest"), "{err}");
        assert!(USAGE.contains("sweep"));
    }

    #[test]
    fn sweep_start_refuses_to_clobber_an_existing_campaign() {
        let dir = std::env::temp_dir().join("simpadv-cli-sweep-clobber");
        let _ = std::fs::remove_dir_all(&dir);
        let config = simpadv_sweep::CampaignConfig {
            schema_version: simpadv_sweep::MANIFEST_VERSION,
            grid: simpadv_sweep::GridSpec {
                dataset: "mnist".into(),
                epochs: 1,
                seed: 2019,
                test_samples: 16,
                methods: vec!["vanilla".into()],
                epsilons: vec![0.3],
                samples: vec![16],
                threads: vec![1],
            },
            retry: simpadv_sweep::RetryConfig::default(),
            cell_deadline_us: 60_000_000,
        };
        simpadv_sweep::Campaign::start(&dir, config).unwrap();
        let err = run_line(&format!("sweep --dir {}", dir.display())).unwrap_err();
        assert!(err.to_string().contains("--resume"), "{err}");
    }

    fn tiny_sweep_artifact() -> simpadv_obs::SweepArtifact {
        simpadv_obs::SweepArtifact {
            schema_version: simpadv_obs::SWEEP_SCHEMA_VERSION,
            experiment: simpadv_obs::SWEEP_EXPERIMENT.to_string(),
            scale: simpadv_obs::SweepScale {
                dataset: "mnist".into(),
                epochs: 1,
                seed: 2019,
                test_samples: 16,
                methods: vec!["vanilla".into()],
                epsilons: vec![0.3],
                samples: vec![16],
                threads: vec![1],
            },
            completed: 1,
            cells: vec![simpadv_obs::SweepCellRow {
                id: "c000-vanilla-e300m-s16-t1".into(),
                method: "vanilla".into(),
                eps: 0.3,
                samples: 16,
                threads: 1,
                final_loss: 1.25,
                columns: vec!["original".into()],
                accuracies: vec![0.875],
            }],
            quarantined: Vec::new(),
            meta: simpadv_obs::SweepMeta {
                wall_total_s: 1.0,
                attempts_total: 1,
                retries_spent: 0,
                note: simpadv_obs::SweepArtifact::wall_note(),
            },
        }
    }

    #[test]
    fn bench_compare_dispatches_on_sweep_aggregates() {
        let artifact = tiny_sweep_artifact();
        let base = write_temp("sweep-base.json", &serde_json::to_string(&artifact).unwrap());
        assert!(run_line(&format!("bench compare {base} {base}")).is_ok());

        // a planted logical accuracy regression fails the gate
        let mut planted = artifact.clone();
        planted.cells[0].accuracies[0] = 0.5;
        let cand = write_temp("sweep-cand.json", &serde_json::to_string(&planted).unwrap());
        let err = run_line(&format!("bench compare {base} {cand}")).unwrap_err();
        assert!(err.to_string().contains("regression"), "{err}");

        // mixing with a kernel scoreboard names both kinds
        let kpath = write_temp(
            "sweep-mixed.json",
            &serde_json::to_string(&tiny_kernels_artifact()).unwrap(),
        );
        let err = run_line(&format!("bench compare {base} {kpath}")).unwrap_err().to_string();
        assert!(err.contains("sweep aggregate") && err.contains("kernel scoreboard"), "{err}");
    }

    #[test]
    fn bench_compare_reports_truncated_artifacts_as_typed_errors() {
        let full = serde_json::to_string(&tiny_sweep_artifact()).unwrap();
        let whole = write_temp("trunc-whole.json", &full);
        // a strict prefix — the signature of a writer killed mid-write
        let torn = write_temp("trunc-torn.json", &full[..full.len() / 2]);
        for order in
            [format!("bench compare {torn} {whole}"), format!("bench compare {whole} {torn}")]
        {
            let err = run_line(&order).unwrap_err().to_string();
            assert!(err.contains("truncated artifact"), "{order}: {err}");
            assert!(err.contains("killed mid-write"), "{order}: {err}");
        }
        let empty = write_temp("trunc-empty.json", "");
        let err = run_line(&format!("bench compare {empty} {whole}")).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    /// Writes a two-process toy campaign trace dir: an orchestrator
    /// incarnation whose attempt span anchors `c000.attempt001.jsonl`,
    /// and that cell trace rooted at the attempt's remote context.
    fn toy_campaign_dir(name: &str) -> String {
        use simpadv_trace::EventKind::{SpanClose, SpanOpen};
        use simpadv_trace::{Event, FieldValue, TraceContext};
        let dir = std::env::temp_dir().join(format!("simpadv-cli-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cx = |span, parent| Some(TraceContext { trace_id: 7, span_id: span, parent });
        let u = |k: &str, v: u64| (k.to_string(), FieldValue::U64(v));
        let s = |k: &str, v: &str| (k.to_string(), FieldValue::Str(v.to_string()));
        let ev = |seq, kind, path: &str, fields, wall: u64, ctx| {
            let meta = if kind == SpanClose { vec![u("wall_us", wall)] } else { Vec::new() };
            Event { seq, kind, path: path.to_string(), fields, meta, ctx }.to_json_line()
        };
        let orch = [
            ev(0, SpanOpen, "sweep", vec![u("cells", 1)], 0, cx(1, None)),
            ev(1, SpanOpen, "sweep/sweep/cell", vec![u("index", 0)], 0, cx(2, Some(1))),
            ev(
                2,
                SpanOpen,
                "sweep/sweep/cell/sweep/attempt",
                vec![u("n", 1), s("trace_file", "c000.attempt001.jsonl")],
                0,
                cx(3, Some(2)),
            ),
            ev(3, SpanClose, "sweep/sweep/cell/sweep/attempt", vec![], 50, None),
            ev(4, SpanClose, "sweep/sweep/cell", vec![], 60, None),
            ev(5, SpanClose, "sweep", vec![], 70, None),
        ]
        .join("\n");
        let cell = [
            ev(0, SpanOpen, "train", vec![s("trainer", "vanilla")], 0, cx(9, Some(3))),
            ev(1, SpanOpen, "train/epoch", vec![u("index", 0)], 0, cx(10, Some(9))),
            ev(2, SpanClose, "train/epoch", vec![u("forward", 4), u("flops", 100)], 20, None),
            ev(3, SpanClose, "train", vec![u("forward", 4), u("flops", 100)], 30, None),
        ]
        .join("\n");
        std::fs::write(dir.join("orchestrator.001.jsonl"), orch).unwrap();
        std::fs::write(dir.join("c000.attempt001.jsonl"), cell).unwrap();
        dir.to_str().unwrap().to_string()
    }

    #[test]
    fn trace_assemble_stitches_a_toy_campaign_dir() {
        let dir = toy_campaign_dir("assemble-test");
        let text = run_line(&format!("trace assemble {dir}")).unwrap();
        assert!(text.contains("assembled 2 file(s)"), "{text}");
        assert!(text.contains("\"path\":\"campaign\""), "campaign root:\n{text}");
        assert!(
            text.contains("campaign/sweep/sweep/cell/sweep/attempt/train"),
            "cell grafted under its attempt span:\n{text}"
        );

        // the logical projection merges the attempt scaffolding away
        // and strips meta
        let logical = run_line(&format!("trace assemble {dir} --project logical")).unwrap();
        assert!(logical.contains("\"path\":\"campaign\""), "{logical}");
        assert!(!logical.contains("wall_us"), "meta must be stripped:\n{logical}");

        // --out writes the stream instead of printing it
        let dest = std::path::Path::new(&dir).join("assembled.jsonl");
        let text = run_line(&format!("trace assemble {dir} --out {}", dest.display())).unwrap();
        assert!(text.contains("wrote"), "{text}");
        let written = std::fs::read_to_string(&dest).unwrap();
        assert!(simpadv_obs::read_events(&written).is_ok(), "written stream must re-parse");

        // bad invocations are typed errors
        assert!(run_line("trace assemble").is_err());
        assert!(run_line("trace assemble /nonexistent/dir").is_err());
        assert!(run_line(&format!("trace assemble {dir} extra")).is_err());
        let err = run_line(&format!("trace assemble {dir} --project bogus")).unwrap_err();
        assert!(err.to_string().contains("raw|logical"), "{err}");
    }

    #[test]
    fn sweep_trace_renders_the_campaign_flamegraph() {
        let dir = toy_campaign_dir("sweep-trace-test");
        let text = run_line(&format!("sweep trace {dir}")).unwrap();
        assert!(text.contains("assembled 2 file(s)"), "{text}");
        assert!(
            text.contains("campaign;sweep;sweep/cell;sweep/attempt;train"),
            "collapsed campaign stack:\n{text}"
        );
        assert!(run_line("sweep trace").is_err());
        assert!(run_line(&format!("sweep trace {dir} extra")).is_err());
        let err = run_line("sweep frobnicate").unwrap_err();
        assert!(err.to_string().contains("unknown sweep action"), "{err}");
    }

    #[test]
    fn sweep_trace_dir_is_exclusive_with_trace_and_slots_advance() {
        let dir = std::env::temp_dir().join("simpadv-cli-trace-dir-flags");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let err = run_line(&format!(
            "sweep --dir {} --trace-dir {} --trace {}",
            dir.join("campaign").display(),
            dir.join("traces").display(),
            dir.join("t.jsonl").display()
        ))
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");

        // incarnation slots: first free NNN, starting 001
        assert_eq!(orchestrator_trace_path(&dir).unwrap(), dir.join("orchestrator.001.jsonl"));
        std::fs::write(dir.join("orchestrator.001.jsonl"), "").unwrap();
        assert_eq!(orchestrator_trace_path(&dir).unwrap(), dir.join("orchestrator.002.jsonl"));
    }

    #[test]
    fn bench_compare_all_self_gates_every_artifact() {
        let dir = std::env::temp_dir().join("simpadv-cli-compare-all");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sweep_json = serde_json::to_string(&tiny_sweep_artifact()).unwrap();
        let kernels_json = serde_json::to_string(&tiny_kernels_artifact()).unwrap();
        std::fs::write(dir.join("BENCH_sweep.json"), &sweep_json).unwrap();
        std::fs::write(dir.join("BENCH_kernels.json"), &kernels_json).unwrap();
        std::fs::write(dir.join("unrelated.json"), "not an artifact").unwrap();

        let text = run_line(&format!("bench compare --all {}", dir.display())).unwrap();
        assert!(text.contains("BENCH_sweep.json"), "{text}");
        assert!(text.contains("sweep aggregate"), "{text}");
        assert!(text.contains("kernel scoreboard"), "{text}");
        assert!(text.contains("all pass"), "{text}");
        assert!(!text.contains("unrelated"), "only BENCH_*.json is gated:\n{text}");

        // a torn artifact flips its row to FAIL and the exit to error
        std::fs::write(dir.join("BENCH_torn.json"), &sweep_json[..sweep_json.len() / 2]).unwrap();
        let err = run_line(&format!("bench compare --all {}", dir.display())).unwrap_err();
        assert!(err.to_string().contains("1 of 3"), "{err}");

        // empty directories and stray positionals are typed errors
        let empty = std::env::temp_dir().join("simpadv-cli-compare-all-empty");
        let _ = std::fs::remove_dir_all(&empty);
        std::fs::create_dir_all(&empty).unwrap();
        let err = run_line(&format!("bench compare --all {}", empty.display())).unwrap_err();
        assert!(err.to_string().contains("no BENCH_*.json"), "{err}");
        let err = run_line(&format!("bench compare a.json --all {}", dir.display())).unwrap_err();
        assert!(err.to_string().contains("no positional"), "{err}");
    }

    #[test]
    fn all_attack_names_parse() {
        for name in
            ["noise", "fgsm", "llfgsm", "bim10", "bim30", "pgd10", "mim10", "fgml2", "pgdl2"]
        {
            assert!(parse_attack(name, 0.3, 1).is_ok(), "{name}");
        }
        assert!(parse_attack("nope", 0.3, 1).is_err());
    }
}
