//! # simpadv-cli
//!
//! The library behind the `simpadv-cli` command-line tool: argument parsing,
//! the model checkpoint format, and the subcommand implementations.
//! Keeping the logic in a library makes every code path unit-testable;
//! `main.rs` is a thin shell.
//!
//! ```text
//! simpadv-cli generate --dataset mnist --samples 20 --preview 3
//! simpadv-cli train    --dataset mnist --method proposed --epochs 40 --out model.json
//! simpadv-cli evaluate --model model.json --dataset mnist
//! simpadv-cli attack   --model model.json --dataset mnist --attack bim10 --index 3
//! ```

mod args;
mod checkpoint;
mod commands;

pub use args::{Args, ParseError};
pub use checkpoint::SavedModel;
pub use commands::{run, CliError};
