//! Model checkpoints: architecture spec + weights in one JSON document.
//!
//! On disk a model is a sealed envelope (see [`simpadv_resilience`]):
//! a checksummed, versioned header line followed by the JSON payload,
//! written atomically. [`SavedModel::load_from`] still accepts the plain
//! JSON files older builds produced.

use serde::{Deserialize, Serialize};
use simpadv::ModelSpec;
use simpadv_nn::{Classifier, StateDict};
use simpadv_resilience::PersistError;
use std::io::{Read, Write};
use std::path::Path;

/// A self-describing model file: rebuilding needs no out-of-band
/// architecture knowledge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedModel {
    /// The architecture.
    pub spec: ModelSpec,
    /// All named tensors.
    pub state: StateDict,
    /// The dataset id the model was trained on (informational).
    pub trained_on: String,
    /// The training method id (informational).
    pub method: String,
}

impl SavedModel {
    /// Captures a trained classifier.
    pub fn capture(
        spec: &ModelSpec,
        clf: &Classifier,
        trained_on: impl Into<String>,
        method: impl Into<String>,
    ) -> Self {
        SavedModel {
            spec: spec.clone(),
            state: StateDict::capture(clf.network()),
            trained_on: trained_on.into(),
            method: method.into(),
        }
    }

    /// Rebuilds the classifier (seed only shapes the throwaway init).
    pub fn restore(&self) -> Classifier {
        let mut clf = self.spec.build(0);
        self.state.restore(clf.network_mut());
        clf
    }

    /// Writes the checkpoint as plain JSON to an arbitrary writer.
    ///
    /// Prefer [`SavedModel::save_to`] for files — it adds the checksum
    /// envelope and the atomic temp-file/rename protocol.
    ///
    /// # Errors
    ///
    /// [`PersistError::NonFinite`] for NaN/infinite weights,
    /// [`PersistError::Encode`] for serialization failures.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), PersistError> {
        self.state.validate_finite()?;
        serde_json::to_writer(writer, self).map_err(|e| PersistError::Encode(e.to_string()))
    }

    /// Reads a plain-JSON checkpoint from an arbitrary reader.
    ///
    /// # Errors
    ///
    /// [`PersistError::Decode`] for malformed input,
    /// [`PersistError::NonFinite`] for corrupted weights.
    pub fn load<R: Read>(reader: R) -> Result<Self, PersistError> {
        let saved: SavedModel =
            serde_json::from_reader(reader).map_err(|e| PersistError::Decode(e.to_string()))?;
        saved.state.validate_finite()?;
        Ok(saved)
    }

    /// Writes the checkpoint to `path` as a sealed envelope — atomic
    /// write, checksummed header, damage detectable on load.
    ///
    /// # Errors
    ///
    /// Any [`PersistError`] from validation, sealing or the write.
    pub fn save_to(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        self.state.validate_finite()?;
        simpadv_resilience::write_sealed_json(path.as_ref(), self)
    }

    /// Reads a checkpoint from `path`: sealed envelopes are verified
    /// against their checksum; files without an envelope header fall back
    /// to the legacy plain-JSON format.
    ///
    /// # Errors
    ///
    /// Any [`PersistError`]; notably [`PersistError::Corrupt`] /
    /// [`PersistError::Truncated`] for damaged sealed files.
    pub fn load_from(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let path = path.as_ref();
        let saved: SavedModel = match simpadv_resilience::read_sealed_json(path) {
            Ok(saved) => saved,
            // No envelope at all → legacy plain-JSON model file. Damage
            // to a *sealed* file surfaces as Corrupt/Truncated/Version
            // and is NOT retried as plain JSON.
            Err(PersistError::BadHeader { .. }) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| PersistError::io(&path.display().to_string(), e))?;
                serde_json::from_str(&text).map_err(|e| PersistError::Decode(e.to_string()))?
            }
            Err(e) => return Err(e),
        };
        saved.state.validate_finite()?;
        Ok(saved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpadv::train::{Trainer, VanillaTrainer};
    use simpadv::TrainConfig;
    use simpadv_data::{SynthConfig, SynthDataset};
    use simpadv_nn::GradientModel;

    fn trained() -> (ModelSpec, Classifier) {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(100, 1));
        let spec = ModelSpec::small_mlp();
        let mut clf = spec.build(3);
        VanillaTrainer::new().train(&mut clf, &train, &TrainConfig::new(2, 0));
        (spec, clf)
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(100, 1));
        let (spec, mut clf) = trained();

        let saved = SavedModel::capture(&spec, &clf, "mnist", "vanilla");
        let mut buf = Vec::new();
        saved.save(&mut buf).unwrap();
        let loaded = SavedModel::load(buf.as_slice()).unwrap();
        assert_eq!(loaded, saved);
        let mut restored = loaded.restore();
        assert_eq!(clf.logits(train.images()), restored.logits(train.images()));
        assert_eq!(loaded.trained_on, "mnist");
        assert_eq!(loaded.method, "vanilla");
    }

    #[test]
    fn corrupt_checkpoint_is_an_error() {
        assert!(matches!(SavedModel::load(&b"{broken"[..]), Err(PersistError::Decode(_))));
    }

    #[test]
    fn sealed_file_roundtrip_and_damage_detection() {
        let dir = std::env::temp_dir().join("simpadv-cli-sealed-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let (spec, clf) = trained();
        let saved = SavedModel::capture(&spec, &clf, "mnist", "vanilla");
        saved.save_to(&path).unwrap();
        assert_eq!(SavedModel::load_from(&path).unwrap(), saved);

        // flip one payload byte: the envelope checksum must catch it
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        let damaged = dir.join("model-damaged.ckpt");
        simpadv_resilience::atomic_write(&damaged, &bytes).unwrap();
        assert!(SavedModel::load_from(&damaged).unwrap_err().is_detected_damage());
    }

    #[test]
    fn legacy_plain_json_still_loads() {
        let dir = std::env::temp_dir().join("simpadv-cli-legacy-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json");
        let (spec, clf) = trained();
        let saved = SavedModel::capture(&spec, &clf, "mnist", "vanilla");
        let json = serde_json::to_string(&saved).unwrap();
        simpadv_resilience::atomic_write(&path, json.as_bytes()).unwrap();
        assert_eq!(SavedModel::load_from(&path).unwrap(), saved);
    }

    #[test]
    fn non_finite_weights_refuse_to_save() {
        let (spec, clf) = trained();
        let mut saved = SavedModel::capture(&spec, &clf, "mnist", "vanilla");
        if let Some((_, t)) = saved.state.entries.first_mut() {
            let mut v = t.as_slice().to_vec();
            v[0] = f32::NAN;
            *t = simpadv_tensor::Tensor::from_vec(v, t.shape());
        }
        assert!(matches!(saved.save(&mut Vec::new()), Err(PersistError::NonFinite { .. })));
    }
}
