//! Model checkpoints: architecture spec + weights in one JSON document.

use serde::{Deserialize, Serialize};
use simpadv::ModelSpec;
use simpadv_nn::{Classifier, StateDict};
use std::io::{Read, Write};

/// A self-describing model file: rebuilding needs no out-of-band
/// architecture knowledge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedModel {
    /// The architecture.
    pub spec: ModelSpec,
    /// All named tensors.
    pub state: StateDict,
    /// The dataset id the model was trained on (informational).
    pub trained_on: String,
    /// The training method id (informational).
    pub method: String,
}

impl SavedModel {
    /// Captures a trained classifier.
    pub fn capture(
        spec: &ModelSpec,
        clf: &Classifier,
        trained_on: impl Into<String>,
        method: impl Into<String>,
    ) -> Self {
        SavedModel {
            spec: spec.clone(),
            state: StateDict::capture(clf.network()),
            trained_on: trained_on.into(),
            method: method.into(),
        }
    }

    /// Rebuilds the classifier (seed only shapes the throwaway init).
    pub fn restore(&self) -> Classifier {
        let mut clf = self.spec.build(0);
        self.state.restore(clf.network_mut());
        clf
    }

    /// Writes the checkpoint as JSON.
    ///
    /// # Errors
    ///
    /// Any underlying I/O or serialization error.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), Box<dyn std::error::Error>> {
        serde_json::to_writer(writer, self)?;
        Ok(())
    }

    /// Reads a checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Any underlying I/O or deserialization error.
    pub fn load<R: Read>(reader: R) -> Result<Self, Box<dyn std::error::Error>> {
        Ok(serde_json::from_reader(reader)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpadv::train::{Trainer, VanillaTrainer};
    use simpadv::TrainConfig;
    use simpadv_data::{SynthConfig, SynthDataset};
    use simpadv_nn::GradientModel;

    #[test]
    fn roundtrip_preserves_predictions() {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(100, 1));
        let spec = ModelSpec::small_mlp();
        let mut clf = spec.build(3);
        VanillaTrainer::new().train(&mut clf, &train, &TrainConfig::new(2, 0));

        let saved = SavedModel::capture(&spec, &clf, "mnist", "vanilla");
        let mut buf = Vec::new();
        saved.save(&mut buf).unwrap();
        let loaded = SavedModel::load(buf.as_slice()).unwrap();
        assert_eq!(loaded, saved);
        let mut restored = loaded.restore();
        assert_eq!(clf.logits(train.images()), restored.logits(train.images()));
        assert_eq!(loaded.trained_on, "mnist");
        assert_eq!(loaded.method, "vanilla");
    }

    #[test]
    fn corrupt_checkpoint_is_an_error() {
        assert!(SavedModel::load(&b"{broken"[..]).is_err());
    }
}
