//! The `simpadv-cli` command-line tool. All logic lives in the library; this
//! shell parses `argv`, dispatches, and maps errors to exit codes.

use simpadv_cli::{run, Args};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run 'simpadv-cli help' for usage");
            std::process::exit(2);
        }
    };
    let mut out = std::io::stdout();
    if let Err(e) = run(&args, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
