//! End-to-end acceptance for cross-process campaign tracing, driven
//! through the real `simpadv-cli` binary: a chaos campaign (one killed
//! cell, at least one retry) assembled with `trace assemble` must yield
//! the same logical span tree as an uninterrupted reference, the
//! assembly itself must be thread-invariant, the raw tree must be
//! single-rooted with one subtree per cell attempt, and a serve request
//! carrying the client's traceparent header must stitch under the
//! client's span.
//!
//! This binary owns the process-global tracer for the serve test;
//! keeping it separate from other CLI test binaries means that global
//! state cannot bleed across them.

use simpadv::ModelSpec;
use simpadv_resilience::CheckpointStore;
use simpadv_serve::{client, BatchConfig, PredictRequest, ServeConfig, ServedModel, Server};
use simpadv_trace::EventKind;
use std::path::{Path, PathBuf};

fn cli() -> &'static str {
    env!("CARGO_BIN_EXE_simpadv-cli")
}

/// Runs the CLI binary, returning (success, combined stdout+stderr).
fn run_cli(args: &[&str]) -> (bool, String) {
    let out = std::process::Command::new(cli()).args(args).output().expect("spawn simpadv-cli");
    let text =
        format!("{}{}", String::from_utf8_lossy(&out.stdout), String::from_utf8_lossy(&out.stderr));
    (out.status.success(), text)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("simpadv-cli-trace-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The shared tiny grid: 2 cells (vanilla at two training scales),
/// traced into `traces`.
fn grid_args(dir: &Path, out: &Path, traces: &Path) -> Vec<String> {
    [
        "sweep",
        "--dir",
        dir.to_str().unwrap(),
        "--methods",
        "vanilla",
        "--eps",
        "0.3",
        "--samples-list",
        "16,24",
        "--threads-list",
        "1",
        "--epochs",
        "1",
        "--test-samples",
        "16",
        "--seed",
        "2019",
        "--trace-dir",
        traces.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn load_artifact(path: &Path) -> simpadv_obs::SweepArtifact {
    let text = std::fs::read_to_string(path).unwrap();
    simpadv_obs::parse_artifact(&text).unwrap()
}

fn run_campaign(args: &[String]) -> (bool, String) {
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    run_cli(&refs)
}

/// `trace assemble <dir> --project logical` into `out`, returning the
/// written bytes.
fn assemble_logical(traces: &Path, out: &Path, threads: &str) -> Vec<u8> {
    let (ok, log) = run_cli(&[
        "trace",
        "assemble",
        traces.to_str().unwrap(),
        "--project",
        "logical",
        "--threads",
        threads,
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(ok, "trace assemble failed:\n{log}");
    std::fs::read(out).unwrap()
}

/// Reads every `*.jsonl` in a campaign trace dir as (name, content).
fn read_trace_dir(dir: &Path) -> Vec<(String, String)> {
    let mut inputs = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("jsonl") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            inputs.push((name, std::fs::read_to_string(&path).unwrap()));
        }
    }
    inputs
}

fn count_named(node: &simpadv_obs::SpanNode, name: &str) -> usize {
    usize::from(node.name == name)
        + node.children.iter().map(|c| count_named(c, name)).sum::<usize>()
}

#[test]
fn chaos_campaign_assembles_to_the_uninterrupted_logical_tree() {
    // Uninterrupted reference campaign, traced.
    let ref_dir = tmpdir("ref");
    let ref_out = ref_dir.join("BENCH_sweep.json");
    let ref_traces = ref_dir.join("traces");
    let (ok, log) = run_campaign(&grid_args(&ref_dir, &ref_out, &ref_traces));
    assert!(ok, "reference campaign failed:\n{log}");

    // Chaos campaign: SIGKILL the first cell attempt shortly after
    // spawn; the retry resumes from checkpoints.
    let chaos_dir = tmpdir("chaos");
    let chaos_out = chaos_dir.join("BENCH_sweep.json");
    let chaos_traces = chaos_dir.join("traces");
    let mut args = grid_args(&chaos_dir, &chaos_out, &chaos_traces);
    args.extend(
        ["--chaos-kill-cell-after-us", "100000", "--chaos-kill-cell-times", "1"]
            .map(str::to_string),
    );
    let (ok, log) = run_campaign(&args);
    assert!(ok, "chaos campaign failed:\n{log}");

    let (reference, interrupted) = (load_artifact(&ref_out), load_artifact(&chaos_out));
    assert!(interrupted.meta.retries_spent >= 1, "the kill must have cost a retry");
    assert!(interrupted.meta.attempts_total >= 3, "2 cells plus at least one retry");
    assert_eq!(interrupted.cells, reference.cells, "chaos must not change logical rows");

    // The assembled logical projection is identical between the
    // uninterrupted and the chaos+retry campaign, byte for byte.
    let ref_logical = assemble_logical(&ref_traces, &ref_dir.join("campaign.jsonl"), "1");
    let chaos_logical = assemble_logical(&chaos_traces, &chaos_dir.join("campaign.jsonl"), "1");
    assert!(!ref_logical.is_empty());
    assert_eq!(
        ref_logical, chaos_logical,
        "chaos+retry must assemble to the uninterrupted logical tree"
    );

    // ... and the assembly itself is thread-invariant.
    let chaos_t4 = assemble_logical(&chaos_traces, &chaos_dir.join("campaign-t4.jsonl"), "4");
    assert_eq!(chaos_logical, chaos_t4, "assembly must not depend on --threads");

    // The raw assembled tree is single-rooted, with one `sweep/attempt`
    // subtree per charged cell attempt.
    let assembly = simpadv_obs::assemble(&read_trace_dir(&chaos_traces)).unwrap();
    let tree = simpadv_obs::build_tree(&assembly.events).unwrap();
    assert_eq!(tree.roots.len(), 1, "assembled stream must be single-rooted");
    assert_eq!(tree.roots[0].name, "campaign");
    let attempts = count_named(&tree.roots[0], "sweep/attempt");
    assert_eq!(
        attempts as u64, interrupted.meta.attempts_total,
        "one attempt subtree per charged attempt"
    );

    // The unified campaign flamegraph folds the whole tree under the
    // synthetic root and carries work from inside the cell processes.
    let (ok, log) = run_cli(&["sweep", "trace", chaos_traces.to_str().unwrap()]);
    assert!(ok, "sweep trace failed:\n{log}");
    assert!(log.contains("campaign;sweep"), "flamegraph must fold under the root:\n{log}");
    assert!(log.contains("sweep/attempt"), "flamegraph must show attempt frames:\n{log}");
}

fn request(seed: u64) -> PredictRequest {
    let pixels = (0..simpadv_data::IMAGE_PIXELS)
        .map(|i| (((i as u64).wrapping_mul(37).wrapping_add(seed * 11) % 251) as f32) / 251.0)
        .collect();
    PredictRequest { pixels, label: Some((seed % 10) as usize), adversarial: false }
}

#[test]
fn serve_requests_stitch_under_the_clients_span() {
    let dir = tmpdir("serve");
    let trace_path = dir.join("loadgen.jsonl");
    simpadv_trace::install_file(&trace_path, simpadv_trace::TraceFormat::Jsonl).unwrap();
    simpadv_trace::set_trace_root(simpadv_trace::context::derive_trace_id("loadgen", 7));

    let models = dir.join("models");
    let store = CheckpointStore::open(&models).unwrap();
    let spec = ModelSpec::small_mlp();
    let clf = spec.build(1);
    ServedModel::capture(&spec, &clf, "mnist", "test").publish(&store).unwrap();

    let mut cfg = ServeConfig::for_dir(&models);
    cfg.batch = BatchConfig { batch_max: 4, batch_timeout_us: 200, queue_cap: 32 };
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr();
    client::wait_ready(&addr, 5_000_000).unwrap();

    // One traced client request: `predict` encodes the open span's
    // context into `X-Simpadv-Traceparent`.
    let client_ctx = {
        let span = simpadv_trace::span!("loadgen", requests = 1u64);
        let ctx = span.context().expect("tracing is on with a trace root set");
        match client::predict(&addr, &request(3)).unwrap() {
            client::PredictOutcome::Predicted(_) => {}
            client::PredictOutcome::Rejected(_) => panic!("queue cannot be full"),
        }
        ctx
    };
    server.shutdown();
    simpadv_trace::uninstall();

    // The server's request span carries the propagated identity: same
    // trace, parented on the client's span.
    let content = std::fs::read_to_string(&trace_path).unwrap();
    let events = simpadv_obs::read_events(&content).unwrap();
    let open = events
        .iter()
        .find(|e| e.kind == EventKind::SpanOpen && e.path.ends_with("serve/request"))
        .expect("a serve/request span must have been traced");
    let ctx = open.ctx.expect("request span must carry a campaign context");
    assert_eq!(ctx.trace_id, client_ctx.trace_id, "request must join the client's trace");
    assert_eq!(ctx.parent, Some(client_ctx.span_id), "request must parent on the client span");

    // And the collector hangs the request under the client's span in
    // the assembled campaign tree.
    let assembly = simpadv_obs::assemble(&[("loadgen.jsonl".to_string(), content)]).unwrap();
    let tree = simpadv_obs::build_tree(&assembly.events).unwrap();
    assert_eq!(tree.roots.len(), 1);
    let mut stitched = false;
    tree.walk(&mut |node| {
        if node.name == "loadgen" {
            stitched = count_named(node, "serve/request") >= 1;
        }
    });
    assert!(stitched, "serve/request must be a descendant of the loadgen span");
}
