//! End-to-end campaign chaos matrix, driven through the real
//! `simpadv-cli` binary: healthy campaigns, chaos-killed cells, a
//! simulated orchestrator death with `--resume`, and quarantine exit
//! codes. The invariant under test everywhere: the aggregate's logical
//! `cells` section is bitwise identical no matter how the campaign was
//! interrupted.

use simpadv_sweep::manifest::ManifestStore;
use simpadv_sweep::CellStatus;
use std::path::{Path, PathBuf};

fn cli() -> &'static str {
    env!("CARGO_BIN_EXE_simpadv-cli")
}

/// Runs the CLI binary, returning (success, combined stdout+stderr).
fn run_cli(args: &[&str]) -> (bool, String) {
    let out = std::process::Command::new(cli()).args(args).output().expect("spawn simpadv-cli");
    let text =
        format!("{}{}", String::from_utf8_lossy(&out.stdout), String::from_utf8_lossy(&out.stderr));
    (out.status.success(), text)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("simpadv-cli-sweep-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The shared tiny grid: 2 cells (vanilla at two training scales).
fn grid_args(dir: &Path, out: &Path) -> Vec<String> {
    [
        "sweep",
        "--dir",
        dir.to_str().unwrap(),
        "--methods",
        "vanilla",
        "--eps",
        "0.3",
        "--samples-list",
        "16,24",
        "--threads-list",
        "1",
        "--epochs",
        "1",
        "--test-samples",
        "16",
        "--seed",
        "2019",
        "--out",
        out.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn load_artifact(path: &Path) -> simpadv_obs::SweepArtifact {
    let text = std::fs::read_to_string(path).unwrap();
    simpadv_obs::parse_artifact(&text).unwrap()
}

fn run_campaign(args: &[String]) -> (bool, String) {
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    run_cli(&refs)
}

#[test]
fn healthy_campaign_completes_and_self_compares() {
    let dir = tmpdir("healthy");
    let out = dir.join("BENCH_sweep.json");
    let (ok, log) = run_campaign(&grid_args(&dir, &out));
    assert!(ok, "campaign failed:\n{log}");
    assert!(log.contains("campaign done: 2 completed, 0 quarantined"), "{log}");

    let artifact = load_artifact(&out);
    assert_eq!(artifact.experiment, "sweep");
    assert_eq!(artifact.completed, 2);
    assert_eq!(artifact.meta.attempts_total, 2, "healthy cells take one attempt each");

    // the written aggregate self-compares clean through the perf gate
    let (ok, log) = run_cli(&["bench", "compare", out.to_str().unwrap(), out.to_str().unwrap()]);
    assert!(ok, "self-compare failed:\n{log}");
}

#[test]
fn chaos_killed_cells_converge_to_the_uninterrupted_result() {
    let ref_dir = tmpdir("chaos-ref");
    let ref_out = ref_dir.join("BENCH_sweep.json");
    let (ok, log) = run_campaign(&grid_args(&ref_dir, &ref_out));
    assert!(ok, "reference campaign failed:\n{log}");

    let chaos_dir = tmpdir("chaos-kill");
    let chaos_out = chaos_dir.join("BENCH_sweep.json");
    let mut args = grid_args(&chaos_dir, &chaos_out);
    // SIGKILL the first cell attempt shortly after spawn; the retry
    // resumes from its checkpoints and must land on the same report.
    args.extend(
        ["--chaos-kill-cell-after-us", "100000", "--chaos-kill-cell-times", "1"]
            .map(str::to_string),
    );
    let (ok, log) = run_campaign(&args);
    assert!(ok, "chaos campaign failed:\n{log}");

    let (reference, interrupted) = (load_artifact(&ref_out), load_artifact(&chaos_out));
    assert_eq!(interrupted.cells, reference.cells, "chaos must not change logical rows");
    assert!(interrupted.meta.retries_spent >= 1, "the kill must have cost a retry");

    // cross-compare through the CLI gate: logical pass (retries only warn)
    let (ok, log) =
        run_cli(&["bench", "compare", ref_out.to_str().unwrap(), chaos_out.to_str().unwrap()]);
    assert!(ok, "cross-compare failed:\n{log}");
}

#[test]
fn orchestrator_death_resumes_to_the_identical_aggregate() {
    let dir = tmpdir("resume");
    let out = dir.join("BENCH_sweep.json");
    let (ok, log) = run_campaign(&grid_args(&dir, &out));
    assert!(ok, "initial campaign failed:\n{log}");
    let reference = load_artifact(&out);

    // Simulate the orchestrator dying mid-cell: rewind the manifest so
    // the last cell is Running (its attempt already charged, exactly as
    // the save-before-spawn protocol leaves it) and drop its report.
    let store = ManifestStore::open(&dir).unwrap();
    let (_, mut manifest) = store.load_latest().unwrap().unwrap();
    let last = manifest.cells.len() - 1;
    manifest.cells[last].status = CellStatus::Running;
    let report = dir.join("cells").join(&manifest.cells[last].spec.id).join("report.json");
    std::fs::remove_file(&report).unwrap();
    store.save(&manifest).unwrap();
    std::fs::remove_file(&out).unwrap();

    let resumed_out = dir.join("BENCH_sweep_resumed.json");
    let (ok, log) = run_cli(&[
        "sweep",
        "--dir",
        dir.to_str().unwrap(),
        "--resume",
        "latest",
        "--out",
        resumed_out.to_str().unwrap(),
    ]);
    assert!(ok, "resume failed:\n{log}");
    assert!(log.contains("folded 1 in-flight cell"), "{log}");

    let resumed = load_artifact(&resumed_out);
    assert_eq!(resumed.cells, reference.cells, "resume must reproduce the aggregate bitwise");
    assert_eq!(resumed.completed, 2);
    assert!(resumed.quarantined.is_empty());
}

#[test]
fn all_cells_quarantined_fails_the_exit_code_but_writes_the_aggregate() {
    let dir = tmpdir("quarantine");
    let out = dir.join("BENCH_sweep.json");
    let mut args = grid_args(&dir, &out);
    // A child binary that always fails: every cell burns its single
    // attempt and is quarantined; the campaign itself still finishes.
    args.extend(
        ["--bin", "/bin/false", "--max-attempts", "1", "--retry-budget", "0"].map(str::to_string),
    );
    let (ok, log) = run_campaign(&args);
    assert!(!ok, "quarantined campaign must exit non-zero:\n{log}");
    assert!(log.contains("2 cell(s) quarantined"), "{log}");

    let artifact = load_artifact(&out);
    assert_eq!(artifact.completed, 0);
    assert_eq!(artifact.quarantined.len(), 2);
    for q in &artifact.quarantined {
        assert!(q.cause.contains("attempt cap"), "{}", q.cause);
        assert!(q.cause.contains("exited with code 1"), "{}", q.cause);
    }
}
