//! Attack gallery: renders a clean digit and its adversarial versions
//! under every attack in the crate as ASCII art, with the model's
//! prediction for each.
//!
//! ```text
//! cargo run --release --example attack_gallery
//! ```

use simpadv_suite::attacks::{Attack, Bim, Fgsm, Mim, Pgd, RandomNoise};
use simpadv_suite::data::{ascii_image, SynthConfig, SynthDataset};
use simpadv_suite::defense::train::{Trainer, VanillaTrainer};
use simpadv_suite::defense::{ModelSpec, TrainConfig};

fn main() {
    let train = SynthDataset::Mnist.generate(&SynthConfig::new(800, 1));
    let mut clf = ModelSpec::default_mlp().build(3);
    println!("training an (undefended) classifier ...");
    VanillaTrainer::new().train(&mut clf, &train, &TrainConfig::new(12, 0));

    // pick one test digit
    let test = SynthDataset::Mnist.generate(&SynthConfig::new(20, 99));
    let idx = 3; // class 3 by construction (balanced generation order)
    let x = test.images().rows(idx..idx + 1);
    let y = vec![test.labels()[idx]];
    let eps = 0.3;

    let mut attacks: Vec<(&str, Box<dyn Attack>)> = vec![
        ("random noise", Box::new(RandomNoise::new(eps, 5))),
        ("fgsm", Box::new(Fgsm::new(eps))),
        ("bim(10)", Box::new(Bim::new(eps, 10))),
        ("pgd(10)", Box::new(Pgd::new(eps, 10, 5))),
        ("mim(10)", Box::new(Mim::new(eps, 10, 1.0))),
    ];

    let pred = clf.predict(&x)[0];
    println!("\n=== clean image — true label {}, predicted {pred} ===", y[0]);
    println!("{}", ascii_image(&x.row(0)));

    for (name, attack) in attacks.iter_mut() {
        let adv = attack.perturb(&mut clf, &x, &y);
        let pred = clf.predict(&adv)[0];
        let verdict = if pred == y[0] { "correct" } else { "FOOLED" };
        println!("=== {name} (eps = {eps}) — predicted {pred} ({verdict}) ===");
        println!("{}", ascii_image(&adv.row(0)));
    }
}
