//! Quickstart: train a robust classifier with the paper's proposed method
//! and compare it against an undefended baseline, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use simpadv_suite::attacks::{Bim, Fgsm};
use simpadv_suite::data::{SynthConfig, SynthDataset};
use simpadv_suite::defense::train::{ProposedTrainer, Trainer, VanillaTrainer};
use simpadv_suite::defense::{evaluate_accuracy, evaluate_clean, ModelSpec, TrainConfig};

fn main() {
    // 1. Data: the synthetic MNIST stand-in (see simpadv-data docs).
    let train = SynthDataset::Mnist.generate(&SynthConfig::new(1000, 1));
    let test = SynthDataset::Mnist.generate(&SynthConfig::new(400, 2));
    let epsilon = SynthDataset::Mnist.paper_epsilon();
    let config = TrainConfig::new(40, 0).with_lr_decay(0.96);

    // 2. Train an undefended classifier and the proposed defense.
    println!("training vanilla classifier ...");
    let mut vanilla = ModelSpec::default_mlp().build(7);
    let rep_v = VanillaTrainer::new().train(&mut vanilla, &train, &config);

    println!("training proposed defense (persistent single-step adversarial examples) ...");
    let mut defended = ModelSpec::default_mlp().build(7);
    let rep_p = ProposedTrainer::paper_defaults(epsilon).train(&mut defended, &train, &config);

    // 3. Evaluate both under clean, FGSM and BIM(10) inputs.
    println!("\n{:<22}{:>10}{:>10}{:>10}{:>12}", "model", "clean", "fgsm", "bim(10)", "s/epoch");
    for (name, clf, rep) in [("vanilla", &mut vanilla, &rep_v), ("proposed", &mut defended, &rep_p)]
    {
        let clean = evaluate_clean(clf, &test);
        let mut fgsm = Fgsm::new(epsilon);
        let a_fgsm = evaluate_accuracy(clf, &test, &mut fgsm);
        let mut bim = Bim::new(epsilon, 10);
        let a_bim = evaluate_accuracy(clf, &test, &mut bim);
        println!(
            "{name:<22}{:>9.1}%{:>9.1}%{:>9.1}%{:>12.3}",
            clean * 100.0,
            a_fgsm * 100.0,
            a_bim * 100.0,
            rep.mean_epoch_seconds()
        );
    }
    println!("\nThe proposed defense keeps clean accuracy, resists iterative attacks that");
    println!("zero out the vanilla model,");
    println!("and costs the same per epoch as single-step adversarial training.");
}
