//! Head-to-head: all five defensive methods from the paper on one
//! dataset, with robustness and cost — a miniature of Table I.
//!
//! ```text
//! cargo run --release --example robust_training [mnist|fashion]
//! ```

use simpadv_suite::data::SynthDataset;
use simpadv_suite::defense::experiments::ExperimentScale;
use simpadv_suite::defense::train::{
    AtdaTrainer, BimAdvTrainer, FgsmAdvTrainer, ProposedTrainer, Trainer, VanillaTrainer,
};
use simpadv_suite::defense::{EvalSuite, ModelSpec};

fn main() {
    let dataset = match std::env::args().nth(1).as_deref() {
        Some("fashion") => SynthDataset::Fashion,
        _ => SynthDataset::Mnist,
    };
    let scale = ExperimentScale::quick();
    let (train, test) = scale.load(dataset);
    let eps = dataset.paper_epsilon();
    let config = scale.train_config();
    println!(
        "dataset {} (eps = {eps}), {} train / {} test, {} epochs\n",
        dataset.id(),
        train.len(),
        test.len(),
        config.epochs
    );

    let mut methods: Vec<(&str, Box<dyn Trainer>)> = vec![
        ("vanilla", Box::new(VanillaTrainer::new())),
        ("fgsm-adv", Box::new(FgsmAdvTrainer::new(eps))),
        ("atda", Box::new(AtdaTrainer::new(eps))),
        ("proposed", Box::new(ProposedTrainer::paper_defaults(eps))),
        ("bim(10)-adv", Box::new(BimAdvTrainer::new(eps, 10))),
    ];

    println!(
        "{:<14}{:>10}{:>10}{:>10}{:>10}{:>12}{:>12}",
        "method", "orig", "fgsm", "bim(10)", "bim(30)", "s/epoch", "passes/ep"
    );
    for (name, trainer) in methods.iter_mut() {
        let mut clf = ModelSpec::default_mlp().build(42);
        let report = trainer.train(&mut clf, &train, &config);
        let eval = EvalSuite::paper(eps).run(&mut clf, &test);
        print!("{name:<14}");
        for a in &eval.accuracies {
            print!("{:>9.1}%", a * 100.0);
        }
        println!("{:>12.3}{:>12.0}", report.mean_epoch_seconds(), report.mean_gradient_passes());
    }
    println!("\nReading: only the methods that train on iterative (or epoch-wise iterated)");
    println!("adversarial examples hold up against BIM, and the proposed method does so");
    println!("at single-step cost.");
}
