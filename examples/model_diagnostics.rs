//! Deep-dive diagnostics of one trained defense: gradient-masking audit,
//! per-class robustness breakdown, and noise-stability via randomized
//! smoothing.
//!
//! ```text
//! cargo run --release --example model_diagnostics
//! ```

use simpadv_suite::attacks::Bim;
use simpadv_suite::data::{SynthConfig, SynthDataset};
use simpadv_suite::defense::train::{ProposedTrainer, Trainer};
use simpadv_suite::defense::{
    audit_masking, class_breakdown, ModelSpec, SmoothedClassifier, TrainConfig,
};

fn main() {
    let dataset = SynthDataset::Mnist;
    let eps = dataset.paper_epsilon();
    let train = dataset.generate(&SynthConfig::new(800, 1));
    let test = dataset.generate(&SynthConfig::new(200, 2));

    println!("training the proposed defense ...");
    let mut clf = ModelSpec::default_mlp().build(7);
    ProposedTrainer::paper_defaults(eps).train(
        &mut clf,
        &train,
        &TrainConfig::new(40, 0).with_lr_decay(0.96),
    );

    // 1. is the robustness real, or obfuscated gradients?
    println!("\n{}", audit_masking(&mut clf, &test, eps, 11));

    // 2. which classes does the defense actually protect?
    println!("per-class recall (columns are classes 0-9):");
    println!("{}", class_breakdown(&mut clf, &test, None));
    let mut bim = Bim::new(eps, 10);
    let attacked = class_breakdown(&mut clf, &test, Some(&mut bim));
    println!("{attacked}");
    if let Some(w) = attacked.weakest_class() {
        println!("weakest class under BIM(10): {w}");
    }

    // 3. stability under pure noise (no gradients involved)
    let subset = test.subset(&(0..50).collect::<Vec<_>>());
    let (acc, margin) =
        SmoothedClassifier::new(&mut clf, 0.35, 24, 5).stability(subset.images(), subset.labels());
    println!(
        "\nsmoothed accuracy at sigma 0.35: {:.1}% (mean vote margin {:.2})",
        acc * 100.0,
        margin
    );
}
