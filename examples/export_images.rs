//! Exports dataset samples and their adversarial versions as PGM images
//! (viewable in any image viewer) — the inspection workflow for anyone
//! extending the datasets or attacks.
//!
//! ```text
//! cargo run --release --example export_images [out_dir]
//! ```

use simpadv_suite::attacks::{Attack, Bim};
use simpadv_suite::data::{save_pgm, SynthConfig, SynthDataset, FASHION_NAMES};
use simpadv_suite::defense::train::{Trainer, VanillaTrainer};
use simpadv_suite::defense::{ModelSpec, TrainConfig};
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir: PathBuf =
        std::env::args().nth(1).unwrap_or_else(|| "exported_images".to_string()).into();
    std::fs::create_dir_all(&out_dir)?;

    // one clean sample per class, both datasets
    for dataset in [SynthDataset::Mnist, SynthDataset::Fashion] {
        let data = dataset.generate(&SynthConfig::new(10, 42));
        for (i, fashion_name) in FASHION_NAMES.iter().enumerate() {
            let name = match dataset {
                SynthDataset::Mnist => format!("mnist_{i}.pgm"),
                SynthDataset::Fashion => format!("fashion_{i}_{fashion_name}.pgm"),
            };
            save_pgm(&data.images().row(i), out_dir.join(name))?;
        }
    }

    // adversarial pair for one digit against a quickly trained model
    let train = SynthDataset::Mnist.generate(&SynthConfig::new(500, 1));
    let mut clf = ModelSpec::default_mlp().build(5);
    VanillaTrainer::new().train(&mut clf, &train, &TrainConfig::new(8, 0));
    let x = train.images().rows(3..4);
    let y = vec![train.labels()[3]];
    let adv = Bim::new(0.3, 10).perturb(&mut clf, &x, &y);
    save_pgm(&x.row(0), out_dir.join("adv_before.pgm"))?;
    save_pgm(&adv.row(0), out_dir.join("adv_after.pgm"))?;

    println!("wrote 22 PGM images to {}", out_dir.display());
    Ok(())
}
