//! Ablation of the proposed method's two knobs — per-epoch step size and
//! reset period — showing the robustness/cost trade-off the paper's
//! Section IV reasons about.
//!
//! ```text
//! cargo run --release --example tradeoff_sweep
//! ```

use simpadv_suite::attacks::Bim;
use simpadv_suite::data::{SynthConfig, SynthDataset};
use simpadv_suite::defense::train::{ProposedTrainer, Trainer};
use simpadv_suite::defense::{evaluate_accuracy, evaluate_clean, ModelSpec, TrainConfig};

fn main() {
    let train = SynthDataset::Mnist.generate(&SynthConfig::new(1000, 1));
    let test = SynthDataset::Mnist.generate(&SynthConfig::new(300, 2));
    let eps = SynthDataset::Mnist.paper_epsilon();
    let config = TrainConfig::new(48, 0).with_lr_decay(0.96);

    println!("proposed-method ablation on synthetic MNIST (eps = {eps})\n");
    println!("{:<26}{:>10}{:>12}", "variant", "clean", "bim(10)");

    // Step-size sweep (reset period fixed at the paper's 20).
    for (label, step) in [
        ("step = eps/30 (tiny)", eps / 30.0),
        ("step = eps/10 (paper)", eps / 10.0),
        ("step = eps/4  (large)", eps / 4.0),
        ("step = eps    (fgsm-like)", eps),
    ] {
        let mut clf = ModelSpec::default_mlp().build(11);
        ProposedTrainer::new(eps, step, 20).train(&mut clf, &train, &config);
        let clean = evaluate_clean(&mut clf, &test);
        let mut bim = Bim::new(eps, 10);
        let robust = evaluate_accuracy(&mut clf, &test, &mut bim);
        println!("{label:<26}{:>9.1}%{:>11.1}%", clean * 100.0, robust * 100.0);
    }
    println!();

    // Reset-period sweep (step fixed at the paper's eps/10).
    for (label, period) in [
        ("reset every 5 epochs", 5usize),
        ("reset every 20 (paper)", 20),
        ("never reset", usize::MAX),
    ] {
        let mut clf = ModelSpec::default_mlp().build(11);
        ProposedTrainer::new(eps, eps / 10.0, period).train(&mut clf, &train, &config);
        let clean = evaluate_clean(&mut clf, &test);
        let mut bim = Bim::new(eps, 10);
        let robust = evaluate_accuracy(&mut clf, &test, &mut bim);
        println!("{label:<26}{:>9.1}%{:>11.1}%", clean * 100.0, robust * 100.0);
    }
    println!("\nReading: step size is an inverted U — tiny steps never accumulate enough");
    println!("perturbation between resets, a full-eps step degenerates toward FGSM-Adv.");
    println!("At short training budgets, resets mostly discard matured examples, so less");
    println!("frequent resets help; the paper's R = 20 targets much longer horizons.");
}
