//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! real `rand` cannot be fetched. This shim implements exactly the surface
//! the `simpadv` workspace uses — [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and the [`Rng`]/[`RngExt`] sampling methods
//! (`random`, `random_range`) — on top of a hand-rolled xoshiro256++
//! generator. Everything is deterministic under a seed; there is no
//! `thread_rng`, no `from_entropy`, and no global entropy source, by design:
//! the workspace's reproducibility lint (R5) forbids ambient randomness.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
///
/// Mirrors the `rand` core trait at the granularity the workspace needs:
/// everything derives from [`Rng::next_u64`].
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (floats from `[0, 1)`, integers and `bool` from their full range).
pub trait StandardUniform: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa coverage.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardUniform>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value from the standard distribution of `T`
    /// (floats uniform in `[0, 1)`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Returns the generator's full internal state, so a consumer can
        /// persist the exact stream position (checkpoint/resume).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at the exact stream position captured by
        /// [`StdRng::state`].
        pub fn from_state(state: [u64; 4]) -> Self {
            StdRng { s: state }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trip_resumes_exact_stream() {
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_f32_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f32 = rng.random();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f = rng.random_range(-0.5f32..0.25);
            assert!((-0.5..0.25).contains(&f), "{f}");
            let i = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&i), "{i}");
            let j = rng.random_range(-4i32..4);
            assert!((-4..4).contains(&j), "{j}");
        }
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "{mean}");
    }

    #[test]
    fn works_through_dyn_and_mut_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let via_ref = draw(&mut rng);
        assert!(via_ref.is_finite());
    }
}
