//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the `simpadv-bench` benches compile against —
//! [`Criterion`], benchmark groups, [`BenchmarkId`], [`Bencher::iter`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! wall-clock timer instead of criterion's statistical machinery. Median of
//! a fixed number of timed batches is reported on stdout.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export for benches that import `criterion::black_box`.
pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: u32,
    result: Option<Duration>,
}

impl Bencher {
    /// Runs `body` repeatedly and records the median batch time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One warm-up call, then `samples` timed batches.
        black_box(body());
        let mut times = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(body());
            times.push(start.elapsed());
        }
        times.sort();
        self.result = Some(times[times.len() / 2]);
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut body: F,
    ) -> &mut Self {
        let mut bencher = Bencher { samples: self.sample_size, result: None };
        body(&mut bencher);
        self.report(&id.to_string(), bencher.result);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self {
        let mut bencher = Bencher { samples: self.sample_size, result: None };
        body(&mut bencher, input);
        self.report(&id.to_string(), bencher.result);
        self
    }

    /// Finishes the group (reporting already happened per-benchmark).
    pub fn finish(self) {}

    fn report(&mut self, id: &str, result: Option<Duration>) {
        match result {
            Some(t) => println!("bench {}/{id}: median {t:.2?}", self.name),
            None => println!("bench {}/{id}: no measurement", self.name),
        }
        self.criterion.benchmarks_run += 1;
    }
}

/// The bench runner handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: u32,
    benchmarks_run: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10, benchmarks_run: 0 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), sample_size }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        body: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, body);
        self
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..100u64 * k).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        demo_bench(&mut c);
        assert_eq!(c.benchmarks_run, 2);
    }

    #[test]
    fn benchmark_id_display() {
        assert_eq!(BenchmarkId::new("bim", 10).to_string(), "bim/10");
        assert_eq!(BenchmarkId::from_parameter(128).to_string(), "128");
    }

    criterion_group!(demo_group, demo_bench);

    #[test]
    fn macros_generate_runners() {
        demo_group();
    }
}
