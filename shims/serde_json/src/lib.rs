//! Offline stand-in for `serde_json`.
//!
//! Renders the shim `serde`'s [`Value`] tree as JSON text and parses JSON
//! text back into it. Covers the workspace's call surface: [`to_string`],
//! [`to_string_pretty`], [`to_writer`], [`to_writer_pretty`], [`from_str`],
//! and [`from_reader`].

#![forbid(unsafe_code)]

use std::fmt;
use std::io::{Read, Write};

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/parse failure.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        // Ryū-style shortest form is unavailable; `{}` on f64 is already
        // round-trippable in Rust.
        if f == f.trunc() && f.abs() < 1e15 {
            out.push_str(&format!("{:.1}", f));
        } else {
            out.push_str(&format!("{}", f));
        }
    } else {
        // Real serde_json errors on non-finite floats; reports in this
        // workspace occasionally carry NaN placeholders, so encode as null.
        out.push_str("null");
    }
}

fn render(value: &Value, pretty: bool, indent: usize, out: &mut String) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => render_f64(*f, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                render(item, pretty, indent + 1, out);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(v, pretty, indent + 1, out);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), false, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as human-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), true, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Serializes `value` as pretty JSON into `writer`.
pub fn to_writer_pretty<W: Write, T: Serialize>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn error(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.error("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the shim
                            // serializer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(self.error(&format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from this byte.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk =
                        self.bytes.get(start..end).ok_or_else(|| self.error("truncated UTF-8"))?;
                    let text =
                        std::str::from_utf8(chunk).map_err(|_| self.error("invalid UTF-8"))?;
                    s.push_str(text);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.error(&format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

/// Parses a value of type `T` from a reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let v: Vec<(String, Vec<f32>)> =
            vec![("dense.w".into(), vec![1.0, -2.5, 0.0]), ("dense.b".into(), vec![])];
        let text = to_string(&v).unwrap();
        let back: Vec<(String, Vec<f32>)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_parseable_and_indented() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  "));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" \\ slash \u{1F600}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn numbers_keep_their_kind() {
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-5").unwrap(), -5);
        assert_eq!(from_str::<f32>("0.25").unwrap(), 0.25);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
    }

    #[test]
    fn float_render_round_trips() {
        for &f in &[0.1f64, 1.0, -3.25, 1e-9, 12345.678901234] {
            let mut out = String::new();
            render_f64(f, &mut out);
            assert_eq!(out.parse::<f64>().unwrap(), f, "render {f} -> {out}");
        }
    }

    #[test]
    fn writer_and_reader_round_trip() {
        let v = vec![1.5f32, 2.0, -0.5];
        let mut buf = Vec::new();
        to_writer(&mut buf, &v).unwrap();
        let back: Vec<f32> = from_reader(&buf[..]).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f32>("[1,").is_err());
        assert!(from_str::<f32>("nope").is_err());
        assert!(from_str::<f32>("1 2").is_err());
    }
}
