//! Offline stand-in for `serde`.
//!
//! The real `serde` cannot be fetched in this build environment, so this
//! shim provides a simplified, value-tree-based serialization pair:
//! [`Serialize`] lowers a type to a [`Value`] tree and [`Deserialize`]
//! rebuilds it. `serde_json` (the sibling shim) renders and parses that
//! tree as JSON. The derive macros (`#[derive(Serialize, Deserialize)]`)
//! come from the local `serde_derive` shim and target exactly these traits.
//!
//! The surface intentionally covers only what the workspace uses: named
//! structs, externally-tagged enums, the primitive scalar types, `String`,
//! `Vec<T>`, `Option<T>`, and 2-/3-tuples.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An untyped serialization tree (the shim's data model, JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (kept exact; not routed through `f64`).
    U64(u64),
    /// Signed integer (kept exact; not routed through `f64`).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an [`Value::Object`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves to a [`Value`] tree.
pub trait Serialize {
    /// Lowers `self` to the shim data model.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, or explains why the tree does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Extracts and deserializes a named field of an object — the helper the
/// derive macro calls for every struct field.
pub fn object_field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    let field = value.get(name).ok_or_else(|| Error::custom(format!("missing field `{name}`")))?;
    T::from_value(field).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
}

// ---------------------------------------------------------------------------
// Scalar impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::U64(u) => *u as i128,
                    Value::I64(i) => *i as i128,
                    Value::F64(f) if f.fract() == 0.0 => *f as i128,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::U64(u) => *u as i128,
                    Value::I64(i) => *i as i128,
                    Value::F64(f) if f.fract() == 0.0 => *f as i128,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(u) => Ok(*u as $t),
                    Value::I64(i) => Ok(*i as $t),
                    other => Err(Error::custom(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::custom(format!("expected 3-tuple, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn container_round_trips() {
        let v: Vec<(String, Vec<f32>)> =
            vec![("w".to_string(), vec![1.0, 2.0]), ("b".to_string(), vec![])];
        assert_eq!(<Vec<(String, Vec<f32>)>>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f32> = None;
        assert_eq!(Option::<f32>::from_value(&o.to_value()).unwrap(), None);
        assert_eq!(Option::<f32>::from_value(&Some(3.0f32).to_value()).unwrap(), Some(3.0));
    }

    #[test]
    fn large_u64_stays_exact() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn missing_field_reports_name() {
        let obj = Value::Object(vec![("a".to_string(), Value::U64(1))]);
        let err = object_field::<u64>(&obj, "b").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
    }
}
