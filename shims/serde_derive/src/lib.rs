//! Offline stand-in for `serde_derive`.
//!
//! The real `serde_derive` (and its `syn`/`quote` dependency tree) is not
//! available in this build environment, so this crate derives the shim
//! `serde`'s value-tree [`Serialize`]/[`Deserialize`] traits by walking the
//! `proc_macro` token stream directly. Supported input shapes — which cover
//! every derived type in the workspace — are:
//!
//! * structs with named fields;
//! * enums whose variants are unit-like or carry named fields
//!   (externally tagged, like real serde's default).
//!
//! Tuple structs, tuple variants, generics, and `#[serde(...)]` attributes
//! are rejected with a compile error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: just its identifier (the type is never needed — the
/// generated code lets inference pick the right `Serialize`/`Deserialize`
/// impl per field).
struct Fields {
    names: Vec<String>,
}

enum Shape {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Option<Fields>)> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("compile_error tokens")
}

/// Extracts the field identifiers from the brace-delimited body of a struct
/// or struct-like enum variant.
fn parse_named_fields(body: TokenStream) -> Result<Fields, String> {
    let mut names = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip leading attributes (doc comments arrive as #[doc = "..."]).
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next(); // the [...] group
                }
                _ => break,
            }
        }
        // Optional visibility.
        match tokens.peek() {
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => {}
        }
        match tokens.next() {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => break,
            Some(other) => return Err(format!("expected field name, found `{other}`")),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        // Consume the type up to the next top-level comma. Generic angle
        // brackets never nest commas at depth 0 relative to `<`...`>`
        // tracking below.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
    }
    Ok(Fields { names })
}

fn parse_enum_variants(body: TokenStream) -> Result<Vec<(String, Option<Fields>)>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                _ => break,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body = g.stream();
                tokens.next();
                Some(parse_named_fields(body)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("tuple variant `{name}` is not supported by the serde shim"));
            }
            _ => None,
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => {
                variants.push((name, fields));
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(
                    "explicit enum discriminants are not supported by the serde shim".into()
                );
            }
            Some(other) => return Err(format!("unexpected token `{other}` after variant")),
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!("generic type `{name}` is not supported by the serde shim"));
        }
    }
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => TokenStream::new(),
        other => return Err(format!("expected `{{`-delimited body, found {other:?}")),
    };
    match kind.as_str() {
        "struct" => Ok(Shape::Struct { name, fields: parse_named_fields(body)? }),
        "enum" => Ok(Shape::Enum { name, variants: parse_enum_variants(body)? }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Derives the shim `serde::Serialize` (value-tree based).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .names
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}\n"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!(
                        "{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n"
                    ),
                    Some(fs) => {
                        let binds = fs.names.join(", ");
                        let pushes: String = fs
                            .names
                            .iter()
                            .map(|f| {
                                format!(
                                    "inner.push(({f:?}.to_string(), ::serde::Serialize::to_value({f})));\n"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                                 let mut inner: Vec<(String, ::serde::Value)> = Vec::new();\n\
                                 {pushes}\
                                 ::serde::Value::Object(vec![({v:?}.to_string(), ::serde::Value::Object(inner))])\n\
                             }},\n"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}\n"
            )
        }
    };
    code.parse().expect("generated Serialize impl should tokenize")
}

/// Derives the shim `serde::Deserialize` (value-tree based).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .names
                .iter()
                .map(|f| format!("{f}: ::serde::object_field(value, {f:?})?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}\n"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| f.is_none())
                .map(|(v, _)| format!("{v:?} => return Ok({name}::{v}),\n"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|(v, f)| f.as_ref().map(|fs| (v, fs)))
                .map(|(v, fs)| {
                    let inits: String = fs
                        .names
                        .iter()
                        .map(|f| format!("{f}: ::serde::object_field(inner, {f:?})?,\n"))
                        .collect();
                    format!("{v:?} => return Ok({name}::{v} {{ {inits} }}),\n")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let ::serde::Value::String(s) = value {{\n\
                             match s.as_str() {{\n{unit_arms}\
                                 _ => {{}}\n\
                             }}\n\
                         }}\n\
                         if let ::serde::Value::Object(entries) = value {{\n\
                             if entries.len() == 1 {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 match tag.as_str() {{\n{tagged_arms}\
                                     _ => {{}}\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::Error::custom(concat!(\"invalid value for enum \", stringify!({name}))))\n\
                     }}\n\
                 }}\n"
            )
        }
    };
    code.parse().expect("generated Deserialize impl should tokenize")
}
