//! Offline stand-in for `proptest`.
//!
//! Implements the slice of proptest the workspace's property suites use:
//! the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! [`Strategy`] with `prop_map`/`prop_flat_map`, numeric-range and
//! `prop::collection::vec` strategies, and the `prop_assert*`/`prop_assume!`
//! macros. Cases are generated deterministically from a seed derived from
//! the test name, so failures reproduce exactly.
//!
//! Differences from real proptest, accepted for an offline environment:
//! no shrinking (the failing inputs are printed as drawn), and no
//! persistence file — determinism makes reruns exact anyway.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The RNG handed to strategies by the runner.
pub type TestRng = StdRng;

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is not counted.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Runner configuration; only the case count is configurable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the workspace's suites are
        // compute-bound (training loops inside cases), so stay moderate.
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then uses it to pick a second strategy to draw
    /// the final value from.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// String strategies from a regex subset, mirroring proptest's `&str`
/// strategy. Supported syntax: literal characters, `[...]` classes with
/// ranges and single characters, `.` (printable ASCII), and the repeaters
/// `{m}`, `{m,n}`, `?`, `+`, `*` (the open-ended ones capped at 8).
mod string_strategy {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    #[derive(Debug, Clone)]
    enum Piece {
        Literal(char),
        Class(Vec<(char, char)>),
        Any,
    }

    fn parse(pattern: &str) -> Vec<(Piece, usize, usize)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let piece = match chars[i] {
                '[' => {
                    let mut ranges = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((chars[i], chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((chars[i], chars[i]));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated `[` in pattern {pattern:?}");
                    i += 1; // closing ]
                    Piece::Class(ranges)
                }
                '.' => {
                    i += 1;
                    Piece::Any
                }
                '\\' => {
                    i += 1;
                    assert!(i < chars.len(), "trailing `\\` in pattern {pattern:?}");
                    let c = chars[i];
                    i += 1;
                    Piece::Literal(c)
                }
                c => {
                    i += 1;
                    Piece::Literal(c)
                }
            };
            let (lo, hi) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .map(|p| i + p)
                            .unwrap_or_else(|| panic!("unterminated `{{` in pattern {pattern:?}"));
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((lo, hi)) => (
                                lo.trim().parse().expect("bad repeat lower bound"),
                                hi.trim().parse().expect("bad repeat upper bound"),
                            ),
                            None => {
                                let n = body.trim().parse().expect("bad repeat count");
                                (n, n)
                            }
                        }
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            pieces.push((piece, lo, hi));
        }
        pieces
    }

    fn sample_piece(piece: &Piece, rng: &mut TestRng) -> char {
        match piece {
            Piece::Literal(c) => *c,
            Piece::Any => rng.random_range(0x20u32..0x7f) as u8 as char,
            Piece::Class(ranges) => {
                let idx = rng.random_range(0..ranges.len());
                let (lo, hi) = ranges[idx];
                char::from_u32(rng.random_range(lo as u32..=hi as u32))
                    .expect("class range produced invalid char")
            }
        }
    }

    impl Strategy for str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for (piece, lo, hi) in parse(self) {
                let n = rng.random_range(lo..=hi);
                for _ in 0..n {
                    out.push(sample_piece(&piece, rng));
                }
            }
            out
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length interval, mirroring proptest's `SizeRange`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    /// Length specifications accepted by [`vec`]: an exact `usize`, a
    /// half-open `Range`, or a `RangeInclusive`.
    pub trait IntoSizeRange {
        /// Converts into the canonical inclusive interval.
        fn into_size_range(self) -> SizeRange;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> SizeRange {
            SizeRange { lo: self, hi: self }
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> SizeRange {
            assert!(self.start < self.end, "empty length range");
            SizeRange { lo: self.start, hi: self.end - 1 }
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn into_size_range(self) -> SizeRange {
            assert!(self.start() <= self.end(), "empty length range");
            SizeRange { lo: *self.start(), hi: *self.end() }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy { element, len: len.into_size_range() }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.lo..=self.len.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Derives a per-test seed from the test's module path and name so each
/// test draws an independent, stable stream.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a, good enough to decorrelate test streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Drives one property test: draws cases, counts rejects, panics on the
/// first failure with the rendered inputs.
///
/// This is the runtime behind the [`proptest!`] macro; user code does not
/// call it directly.
pub fn run_property_test<F: FnMut(&mut TestRng) -> Result<(), TestCaseError>>(
    name: &str,
    config: ProptestConfig,
    mut case: F,
) {
    let mut rng = TestRng::seed_from_u64(seed_from_name(name));
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = (config.cases as u64) * 256;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest `{name}`: too many prop_assume! rejections \
                     ({rejected} rejects for {passed} accepted cases)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed after {passed} passing case(s): {msg}");
            }
        }
    }
}

/// Everything the suites import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Mirrors real proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (not counted toward the case budget) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Mirrors real proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0u64..100, v in prop::collection::vec(0.0f32..1.0, 1..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property_test(
                    concat!(module_path!(), "::", stringify!($name)),
                    $cfg,
                    |__proptest_rng| {
                        let mut __proptest_inputs = ::std::string::String::new();
                        $(
                            let __proptest_drawn =
                                $crate::Strategy::sample(&($strat), __proptest_rng);
                            __proptest_inputs.push_str(&format!(
                                "\n    {} = {:?}",
                                stringify!($pat),
                                __proptest_drawn
                            ));
                            let $pat = __proptest_drawn;
                        )*
                        let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                            (|| {
                                $body
                                ::std::result::Result::Ok(())
                            })();
                        match __proptest_result {
                            ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                                ::std::result::Result::Err($crate::TestCaseError::Fail(
                                    format!("{msg}\n  inputs:{__proptest_inputs}"),
                                ))
                            }
                            other => other,
                        }
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = (0.25f32..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let u = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn vec_strategy_respects_len_and_elements() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat = collection::vec(0.0f32..1.0, 2..5);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::seed_from_u64(3);
        let strat = (1usize..4)
            .prop_flat_map(|n| collection::vec(0.0f32..1.0, n..n + 1))
            .prop_map(|v| v.len());
        for _ in 0..100 {
            let n = strat.sample(&mut rng);
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        let mut first = Vec::new();
        run_property_test("demo", ProptestConfig::with_cases(5), |rng| {
            first.push((0u64..100).sample(rng));
            Ok(())
        });
        let mut second = Vec::new();
        run_property_test("demo", ProptestConfig::with_cases(5), |rng| {
            second.push((0u64..100).sample(rng));
            Ok(())
        });
        assert_eq!(first, second);
    }

    proptest! {
        #[test]
        fn macro_end_to_end(x in 0u64..50, v in prop::collection::vec(0.0f32..1.0, 1..4)) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn macro_with_config(pair in (0usize..3).prop_map(|a| (a, a + 1))) {
            let (a, b) = pair;
            prop_assert_eq!(a + 1, b);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic_with_context() {
        run_property_test("always_fails", ProptestConfig::with_cases(3), |_rng| {
            Err(TestCaseError::Fail("nope".to_string()))
        });
    }
}
