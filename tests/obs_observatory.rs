//! End-to-end acceptance of the performance observatory (`simpadv-obs`):
//! trace diff across thread counts on a real training run, flamegraph
//! weights reconciling with `trace summarize` totals, and the committed
//! `BENCH_table1.json` baseline gating a planted logical regression.
//!
//! The tracer-driven checks live in one test function on purpose: the
//! tracer is process-global, so a second concurrently-running traced
//! test in this binary would interleave its events into the streams
//! under comparison. The baseline-file check below touches no tracer
//! state and may run in parallel.

use simpadv::train::{ProposedTrainer, Trainer};
use simpadv::{EvalSuite, ModelSpec, TrainConfig};
use simpadv_data::{SynthConfig, SynthDataset};
use simpadv_obs::{
    baseline, build_tree, collapse, compare, diff, parse_collapsed, prefix_totals,
    render_collapsed, BenchArtifact, CompareOptions, DiffOptions, FlameWeight,
};
use simpadv_trace::{Event, Summary};

/// One fully traced tiny run: train the proposed defense, evaluate it.
fn traced_run(threads: usize) -> Vec<Event> {
    simpadv_runtime::set_global_threads(threads);
    let handle = simpadv_trace::install_memory();

    let train = SynthDataset::Mnist.generate(&SynthConfig::new(64, 1));
    let test = SynthDataset::Mnist.generate(&SynthConfig::new(40, 2));
    let mut clf = ModelSpec::small_mlp().build(0);
    let _ = ProposedTrainer::paper_defaults(0.3).train(
        &mut clf,
        &train,
        &TrainConfig::new(3, 0).with_batch_size(32),
    );
    let _ = EvalSuite::paper(0.3).run(&mut clf, &test);

    simpadv_trace::uninstall(); // flushes pending histograms into the sink
    handle.take()
}

#[test]
fn trace_diff_and_flame_reconcile_with_summarize_on_a_real_run() {
    let serial = traced_run(1);
    let parallel = traced_run(4);
    simpadv_runtime::set_global_threads(1);

    // -- `trace diff` across thread counts: zero logical differences --
    let report = diff(&serial, &parallel, &DiffOptions::default());
    assert!(
        report.logically_identical(),
        "threads 1 vs 4 diverged logically:\n{}",
        report.render()
    );

    // -- flame output is non-empty and telescopes back to the tree --
    let tree = build_tree(&serial).expect("a traced run yields a balanced span tree");
    let folded = render_collapsed(&collapse(&tree, FlameWeight::Wall));
    assert!(!folded.trim().is_empty(), "collapsed-stack output must not be empty");
    let totals = prefix_totals(&parse_collapsed(&folded).expect("own output parses"));

    // -- ...and its root weights equal `trace summarize` wall totals --
    let mut summary = Summary::default();
    for event in &serial {
        summary.fold(event);
    }
    for root in &tree.roots {
        assert_eq!(
            totals.get(&root.path.replace('/', ";")).copied(),
            Some(summary.spans[&root.path].wall_us_total),
            "flame weight for root '{}' must equal the summarize total",
            root.path
        );
    }

    // the digest of the logical projection is thread-invariant too
    assert_eq!(baseline::logical_digest(&serial), baseline::logical_digest(&parallel));
}

/// The committed baseline must self-compare clean, and the gate must
/// fail when a logical counter regresses — the executable version of
/// the CI perf-gate contract.
#[test]
fn committed_bench_baseline_gates_planted_regressions() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_table1.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("committed baseline {path} must be readable: {e}"));
    let artifact: BenchArtifact =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("invalid baseline artifact: {e}"));
    assert_eq!(artifact.experiment, "table1");
    assert_eq!(artifact.schema_version, simpadv_obs::BENCH_SCHEMA_VERSION);
    assert!(!artifact.trainers.is_empty(), "baseline must carry per-trainer costs");
    assert!(!artifact.accuracies.is_empty(), "baseline must carry final accuracies");

    let clean = compare(&artifact, &artifact, &CompareOptions::default());
    assert!(clean.passed(), "self-comparison regressed:\n{}", clean.render());

    let mut planted = artifact.clone();
    planted.trainers[0].flops += 1;
    let caught = compare(&artifact, &planted, &CompareOptions::default());
    assert!(!caught.passed(), "a planted flops regression must fail the gate");
    assert!(
        caught.regressions.iter().any(|r| r.contains("flops")),
        "the regression report must name the changed counter:\n{}",
        caught.render()
    );

    // the digest pins the trace's logical projection: corrupting it fails too
    let mut tampered = artifact.clone();
    tampered.trace_digest = format!("{:016x}", 0u64);
    assert!(!compare(&artifact, &tampered, &CompareOptions::default()).passed());

    // sanity of the committed per-trainer rows themselves
    for trainer in &artifact.trainers {
        assert!(!trainer.trainer.is_empty());
        assert!(trainer.epochs >= trainer.runs, "every run has at least one epoch span");
    }
}
