//! End-to-end integration: data → training → attack → evaluation →
//! serialization, across every crate in the workspace.

use simpadv_suite::attacks::{linf_distance, Attack, Bim, Fgsm, Pgd};
use simpadv_suite::data::{SynthConfig, SynthDataset};
use simpadv_suite::defense::train::{ProposedTrainer, Trainer, VanillaTrainer};
use simpadv_suite::defense::{evaluate_accuracy, evaluate_clean, ModelSpec, TrainConfig};
use simpadv_suite::nn::{load_state_dict_json, save_state_dict_json, GradientModel};

#[test]
fn attacks_respect_constraints_against_trained_models() {
    let train = SynthDataset::Mnist.generate(&SynthConfig::new(200, 1));
    let mut clf = ModelSpec::small_mlp().build(0);
    VanillaTrainer::new().train(&mut clf, &train, &TrainConfig::new(4, 0));

    let test = SynthDataset::Mnist.generate(&SynthConfig::new(50, 2));
    let x = test.images().rows(0..20);
    let y = test.labels()[..20].to_vec();
    let eps = 0.3;
    let mut attacks: Vec<Box<dyn Attack>> =
        vec![Box::new(Fgsm::new(eps)), Box::new(Bim::new(eps, 10)), Box::new(Pgd::new(eps, 10, 3))];
    for attack in attacks.iter_mut() {
        let adv = attack.perturb(&mut clf, &x, &y);
        assert!(linf_distance(&adv, &x) <= eps + 1e-5, "{} violates budget", attack.id());
        assert!(
            adv.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)),
            "{} leaves pixel box",
            attack.id()
        );
    }
}

#[test]
fn proposed_training_full_pipeline() {
    let train = SynthDataset::Mnist.generate(&SynthConfig::new(400, 1));
    let test = SynthDataset::Mnist.generate(&SynthConfig::new(150, 2));
    let eps = 0.3;
    let config = TrainConfig::new(40, 0).with_lr_decay(0.95);
    let mut clf = ModelSpec::default_mlp().build(0);
    let report = ProposedTrainer::paper_defaults(eps).train(&mut clf, &train, &config);
    assert_eq!(report.epochs(), 40);
    // robustness: better than an undefended model under BIM
    let mut vanilla = ModelSpec::default_mlp().build(0);
    VanillaTrainer::new().train(&mut vanilla, &train, &config);
    let mut atk1 = Bim::new(eps, 10);
    let mut atk2 = Bim::new(eps, 10);
    let robust_def = evaluate_accuracy(&mut clf, &test, &mut atk1);
    let robust_van = evaluate_accuracy(&mut vanilla, &test, &mut atk2);
    assert!(
        robust_def > robust_van + 0.05,
        "proposed ({robust_def}) must beat vanilla ({robust_van}) under BIM"
    );
    // clean accuracy survives
    assert!(evaluate_clean(&mut clf, &test) > 0.85);
}

#[test]
fn trained_model_roundtrips_through_json() {
    let train = SynthDataset::Fashion.generate(&SynthConfig::new(200, 3));
    let mut clf = ModelSpec::small_mlp().build(1);
    VanillaTrainer::new().train(&mut clf, &train, &TrainConfig::new(3, 0));

    let mut buf = Vec::new();
    save_state_dict_json(clf.network(), &mut buf).unwrap();
    let mut restored = ModelSpec::small_mlp().build(99);
    load_state_dict_json(restored.network_mut(), buf.as_slice()).unwrap();

    let probe = SynthDataset::Fashion.generate(&SynthConfig::new(30, 4));
    assert_eq!(clf.logits(probe.images()), restored.logits(probe.images()));
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(150, 5));
        let test = SynthDataset::Mnist.generate(&SynthConfig::new(60, 6));
        let mut clf = ModelSpec::small_mlp().build(2);
        ProposedTrainer::paper_defaults(0.3).train(&mut clf, &train, &TrainConfig::new(4, 1));
        let mut atk = Bim::new(0.3, 5);
        evaluate_accuracy(&mut clf, &test, &mut atk)
    };
    assert_eq!(run(), run());
}

#[test]
fn gradients_flow_through_the_full_stack() {
    // input gradient of a trained classifier is nonzero and finite on real
    // data — the quantity every attack consumes
    let train = SynthDataset::Mnist.generate(&SynthConfig::new(100, 9));
    let mut clf = ModelSpec::small_mlp().build(4);
    VanillaTrainer::new().train(&mut clf, &train, &TrainConfig::new(2, 0));
    let x = train.images().rows(0..8);
    let y = train.labels()[..8].to_vec();
    let (loss, grad) = clf.loss_and_input_grad(&x, &y);
    assert!(loss.is_finite());
    assert_eq!(grad.shape(), x.shape());
    assert!(grad.as_slice().iter().all(|v| v.is_finite()));
    assert!(grad.norm_linf() > 0.0, "gradient must be nonzero");
}

#[test]
fn fashion_pipeline_works_end_to_end() {
    let train = SynthDataset::Fashion.generate(&SynthConfig::new(300, 11));
    let test = SynthDataset::Fashion.generate(&SynthConfig::new(100, 12));
    let eps = SynthDataset::Fashion.paper_epsilon();
    let mut clf = ModelSpec::small_mlp().build(5);
    ProposedTrainer::paper_defaults(eps).train(&mut clf, &train, &TrainConfig::new(10, 0));
    let clean = evaluate_clean(&mut clf, &test);
    assert!(clean > 0.6, "fashion clean accuracy {clean}");
}
