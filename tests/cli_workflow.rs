//! The full CLI workflow as a user would run it: generate → train →
//! evaluate → attack, through the `simpadv-cli` library API.

use simpadv_cli::{run, Args, SavedModel};

fn cli(line: &str) -> Result<String, String> {
    let args =
        Args::parse(line.split_whitespace().map(str::to_string)).map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    run(&args, &mut out).map_err(|e| e.to_string())?;
    Ok(String::from_utf8(out).expect("utf8"))
}

#[test]
fn generate_train_evaluate_attack_workflow() {
    let dir = std::env::temp_dir().join("simpadv-suite-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("workflow.json");
    let model = model_path.to_str().unwrap();

    // generate: shows dataset stats and previews
    let text = cli("generate --dataset fashion --samples 10 --preview 1").unwrap();
    assert!(text.contains("generated 10 'fashion' images"));

    // train a quick robust model and checkpoint it
    let text = cli(&format!(
        "train --dataset mnist --method proposed --epochs 4 --samples 120 --out {model}"
    ))
    .unwrap();
    assert!(text.contains("training proposed"));

    // the written model is a valid sealed SavedModel with metadata
    let saved = SavedModel::load_from(&model_path).unwrap();
    assert_eq!(saved.trained_on, "mnist");
    assert_eq!(saved.method, "proposed");

    // evaluate prints the Table-I column set
    let text = cli(&format!("evaluate --model {model} --dataset mnist --samples 50")).unwrap();
    for col in ["original", "fgsm", "bim(10)", "bim(30)"] {
        assert!(text.contains(col), "missing column {col} in:\n{text}");
    }

    // attack renders before/after ASCII art
    let text =
        cli(&format!("attack --model {model} --dataset mnist --attack pgd10 --index 2")).unwrap();
    assert!(text.contains("true label 2"));
    assert!(text.contains("pgd(10)"));
}

#[test]
fn cli_surfaces_helpful_errors() {
    let err = cli("evaluate --dataset mnist").unwrap_err();
    assert!(err.contains("--model"), "unhelpful error: {err}");
    let err = cli("train --dataset mars").unwrap_err();
    assert!(err.contains("mars"));
    let err = cli("attack --model /nonexistent.json --dataset mnist").unwrap_err();
    assert!(!err.is_empty());
}
