//! The full CLI workflow as a user would run it: generate → train →
//! evaluate → attack, through the `simpadv-cli` library API.

use simpadv_cli::{run, Args, SavedModel};

fn cli(line: &str) -> Result<String, String> {
    let args =
        Args::parse(line.split_whitespace().map(str::to_string)).map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    run(&args, &mut out).map_err(|e| e.to_string())?;
    Ok(String::from_utf8(out).expect("utf8"))
}

#[test]
fn generate_train_evaluate_attack_workflow() {
    let dir = std::env::temp_dir().join("simpadv-suite-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("workflow.json");
    let model = model_path.to_str().unwrap();

    // generate: shows dataset stats and previews
    let text = cli("generate --dataset fashion --samples 10 --preview 1").unwrap();
    assert!(text.contains("generated 10 'fashion' images"));

    // train a quick robust model and checkpoint it
    let text = cli(&format!(
        "train --dataset mnist --method proposed --epochs 4 --samples 120 --out {model}"
    ))
    .unwrap();
    assert!(text.contains("training proposed"));

    // the written model is a valid sealed SavedModel with metadata
    let saved = SavedModel::load_from(&model_path).unwrap();
    assert_eq!(saved.trained_on, "mnist");
    assert_eq!(saved.method, "proposed");

    // evaluate prints the Table-I column set
    let text = cli(&format!("evaluate --model {model} --dataset mnist --samples 50")).unwrap();
    for col in ["original", "fgsm", "bim(10)", "bim(30)"] {
        assert!(text.contains(col), "missing column {col} in:\n{text}");
    }

    // attack renders before/after ASCII art
    let text =
        cli(&format!("attack --model {model} --dataset mnist --attack pgd10 --index 2")).unwrap();
    assert!(text.contains("true label 2"));
    assert!(text.contains("pgd(10)"));
}

#[test]
fn serve_verb_answers_requests_then_shuts_down() {
    use simpadv_serve::{client, PredictRequest, ServedModel};

    let dir = std::env::temp_dir().join("simpadv-cli-serve-test");
    let _ = std::fs::remove_dir_all(&dir);
    let model_dir = dir.join("ckpts");
    let store = simpadv_resilience::CheckpointStore::open(&model_dir).unwrap();
    let spec = simpadv::ModelSpec::small_mlp();
    ServedModel::capture(&spec, &spec.build(6), "mnist", "test").publish(&store).unwrap();

    let data = simpadv_data::SynthDataset::Mnist.generate(&simpadv_data::SynthConfig::new(4, 13));
    let addr_file = dir.join("addr.txt");
    let line = format!(
        "serve --model-dir {} --requests 4 --addr-file {} --batch-max 2",
        model_dir.display(),
        addr_file.display()
    );

    // The verb blocks until 4 requests are served, so drive it from a
    // sibling thread that discovers the bound port through --addr-file.
    let rt = simpadv_runtime::Runtime::new(2);
    let (text, predictions) = rt.par_join(
        || cli(&line).unwrap(),
        || {
            let timer = simpadv_trace::clock::WallTimer::start();
            let addr = loop {
                if let Ok(addr) = std::fs::read_to_string(&addr_file) {
                    if !addr.trim().is_empty() {
                        break addr.trim().to_string();
                    }
                }
                assert!(timer.elapsed_us() < 10_000_000, "server never wrote --addr-file");
            };
            client::wait_ready(&addr, 5_000_000).unwrap();
            (0..data.len())
                .map(|i| {
                    let request = PredictRequest {
                        pixels: data.images().row(i).into_vec(),
                        label: Some(data.labels()[i]),
                        adversarial: false,
                    };
                    match client::predict(&addr, &request).unwrap() {
                        client::PredictOutcome::Predicted(resp) => resp.prediction,
                        client::PredictOutcome::Rejected(r) => panic!("rejected: {r:?}"),
                    }
                })
                .collect::<Vec<_>>()
        },
    );
    assert_eq!(predictions.len(), 4);
    assert!(text.contains("serving generation 1"), "missing banner in:\n{text}");
    assert!(text.contains("served 4 request(s)"), "missing shutdown line in:\n{text}");
}

#[test]
fn cli_surfaces_helpful_errors() {
    let err = cli("evaluate --dataset mnist").unwrap_err();
    assert!(err.contains("--model"), "unhelpful error: {err}");
    let err = cli("train --dataset mars").unwrap_err();
    assert!(err.contains("mars"));
    let err = cli("attack --model /nonexistent.json --dataset mnist").unwrap_err();
    assert!(!err.is_empty());
}
