//! Smoke tests for the figure/table runners: structure and the cheapest
//! qualitative invariants at a seconds-scale workload.

use simpadv_suite::data::SynthDataset;
use simpadv_suite::defense::experiments::{fig1, fig2, table1, ExperimentScale};

fn smoke() -> ExperimentScale {
    ExperimentScale::smoke()
}

#[test]
fn fig1_smoke_structure_and_vanilla_collapse() {
    let r = fig1::run(SynthDataset::Mnist, &smoke());
    assert_eq!(r.dataset, "mnist");
    assert_eq!(r.series.len(), 4);
    let vanilla = r.series_for("vanilla").unwrap();
    // vanilla is defenseless: by 5+ iterations its accuracy is tiny
    assert!(vanilla.last().unwrap() < &0.15, "vanilla end accuracy {:?}", vanilla.last());
    // every series stays in [0, 1]
    for (_, s) in &r.series {
        assert!(s.iter().all(|a| (0.0..=1.0).contains(a)));
    }
    // JSON artifact serializes
    let json = serde_json::to_string(&r).unwrap();
    let back: fig1::Fig1Result = serde_json::from_str(&json).unwrap();
    assert_eq!(back, r);
}

#[test]
fn fig2_smoke_monotone_for_vanilla() {
    let r = fig2::run(SynthDataset::Mnist, &smoke());
    let vanilla = r.series_for("vanilla").unwrap();
    assert_eq!(vanilla.len(), fig2::ATTACK_ITERATIONS);
    // growing perturbation cannot help the undefended model (tolerate tiny
    // sampling wiggle)
    for w in vanilla.windows(2) {
        assert!(w[1] <= w[0] + 0.05, "vanilla not monotone: {vanilla:?}");
    }
    // most of the drop happens early: first-half drop >= second-half drop
    let first = vanilla[0] - vanilla[4];
    let second = vanilla[4] - vanilla[9];
    assert!(first >= second - 0.05, "degradation not front-loaded: {vanilla:?}");
}

#[test]
fn table1_smoke_cost_ordering() {
    let r = table1::run(&smoke());
    assert_eq!(r.rows.len(), 5);
    let passes = |m: &str| r.row(m).unwrap().gradient_passes_per_epoch;
    // the machine-independent cost column must reproduce the paper's
    // ordering even at smoke scale
    assert!(passes("FGSM-Adv") <= passes("ATDA") + 1.0);
    assert!(passes("Proposed") <= passes("FGSM-Adv") + 1.0);
    assert!(passes("BIM(10)-Adv") > 2.0 * passes("Proposed"));
    assert!(passes("BIM(30)-Adv") > 2.5 * passes("BIM(10)-Adv"));
    // wall-clock agrees on the coarse split (iterative ≫ single-step)
    let secs = |m: &str| r.row(m).unwrap().seconds_per_epoch;
    assert!(secs("BIM(30)-Adv") > secs("Proposed"));
}
