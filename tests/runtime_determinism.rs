//! Cross-crate determinism: the worker thread count must never change a
//! single bit of any result. This exercises the full stack — parallel
//! tensor kernels, chunked attack crafting, the Proposed trainer's
//! persistent-example advance, and the evaluation battery — at 1 and 4
//! threads and demands bitwise equality (invariant R5 extended by the
//! runtime's determinism contract).

use simpadv::train::{ProposedTrainer, Trainer};
use simpadv::{EvalSuite, ModelSpec, TrainConfig};
use simpadv_attacks::parallel::craft_parallel;
use simpadv_attacks::{Bim, Pgd};
use simpadv_data::{SynthConfig, SynthDataset};
use simpadv_runtime::{set_global_threads, split_seed, Runtime};
use simpadv_serve::{BatchConfig, Engine, PredictRequest, ServedModel};

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Trains the Proposed defense and runs the Table I battery with the
/// process-global runtime pinned to `threads`.
fn train_and_eval(threads: usize) -> (Vec<f32>, Vec<f32>) {
    set_global_threads(threads);
    let train = SynthDataset::Mnist.generate(&SynthConfig::new(120, 1));
    let test = SynthDataset::Mnist.generate(&SynthConfig::new(80, 2));
    let mut clf = ModelSpec::small_mlp().build(0);
    let report =
        ProposedTrainer::paper_defaults(0.3).train(&mut clf, &train, &TrainConfig::new(4, 7));
    let result = EvalSuite::paper(0.3).run(&mut clf, &test);
    (report.epoch_losses, result.accuracies)
}

// Everything observing the global thread count lives in this one test:
// the test binary would otherwise race its own `set_global_threads`
// calls across test threads.
#[test]
fn thread_count_never_changes_results() {
    // Training loss curves and evaluation accuracies, threads = 1 vs 4.
    let (loss_serial, acc_serial) = train_and_eval(1);
    let (loss_parallel, acc_parallel) = train_and_eval(4);
    assert_eq!(loss_serial.len(), 4);
    assert_eq!(acc_serial.len(), 4); // original, fgsm, bim(10), bim(30)
    assert_eq!(bits(&loss_serial), bits(&loss_parallel), "loss curves diverged");
    assert_eq!(bits(&acc_serial), bits(&acc_parallel), "eval accuracies diverged");

    // Crafted adversarial batches with explicit runtimes, deterministic
    // and seeded-stochastic attacks alike.
    let data = SynthDataset::Fashion.generate(&SynthConfig::new(50, 3));
    let model = ModelSpec::small_mlp().build(1);
    let x = data.images().clone();
    let y = data.labels().to_vec();
    let craft = |threads: usize| {
        let rt = Runtime::new(threads);
        let bim = craft_parallel(&rt, &model, &|_| Box::new(Bim::new(0.2, 5)), &x, &y);
        let pgd = craft_parallel(
            &rt,
            &model,
            &|first| Box::new(Pgd::new(0.2, 3, split_seed(2019, first as u64))),
            &x,
            &y,
        );
        (bim, pgd)
    };
    let (bim_serial, pgd_serial) = craft(1);
    let (bim_parallel, pgd_parallel) = craft(4);
    assert_eq!(bim_serial, bim_parallel, "BIM batches diverged");
    assert_eq!(pgd_serial, pgd_parallel, "seeded PGD batches diverged");

    // Batch-coalesced inference (crates/serve): one coalesced forward
    // must be bitwise identical to N individual forwards, and both must
    // be thread-count invariant — the serving path shares the tensor
    // kernels' row-independence guarantee.
    let serve_data = SynthDataset::Mnist.generate(&SynthConfig::new(10, 9));
    let requests: Vec<PredictRequest> = (0..serve_data.len())
        .map(|i| PredictRequest {
            pixels: serve_data.images().row(i).into_vec(),
            label: Some(serve_data.labels()[i]),
            adversarial: i % 2 == 0,
        })
        .collect();
    let infer = |threads: usize| -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
        set_global_threads(threads);
        let dir = std::env::temp_dir().join(format!("simpadv-batch-determinism-{threads}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store = simpadv_resilience::CheckpointStore::open(&dir).unwrap();
        let spec = ModelSpec::small_mlp();
        ServedModel::capture(&spec, &spec.build(5), "mnist", "test").publish(&store).unwrap();
        // batch_max 4 over 10 requests: coalesced chunks of 4/4/2
        let engine =
            Engine::new(store, BatchConfig { batch_max: 4, batch_timeout_us: 100, queue_cap: 16 })
                .unwrap();
        let batched: Vec<Vec<u32>> =
            engine.infer_batch(&requests).unwrap().iter().map(|r| bits(&r.logits)).collect();
        let singles: Vec<Vec<u32>> = requests
            .iter()
            .map(|r| bits(&engine.infer_batch(std::slice::from_ref(r)).unwrap()[0].logits))
            .collect();
        (batched, singles)
    };
    let (batched_serial, singles_serial) = infer(1);
    let (batched_parallel, singles_parallel) = infer(4);
    assert_eq!(batched_serial, singles_serial, "coalesced batch diverged from single forwards");
    assert_eq!(batched_serial, batched_parallel, "batched inference diverged across threads");
    assert_eq!(singles_serial, singles_parallel, "single inference diverged across threads");

    set_global_threads(1);
}
