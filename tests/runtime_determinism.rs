//! Cross-crate determinism: the worker thread count must never change a
//! single bit of any result. This exercises the full stack — parallel
//! tensor kernels, chunked attack crafting, the Proposed trainer's
//! persistent-example advance, and the evaluation battery — at 1 and 4
//! threads and demands bitwise equality (invariant R5 extended by the
//! runtime's determinism contract).

use simpadv::train::{ProposedTrainer, Trainer};
use simpadv::{EvalSuite, ModelSpec, TrainConfig};
use simpadv_attacks::parallel::craft_parallel;
use simpadv_attacks::{Bim, Pgd};
use simpadv_data::{SynthConfig, SynthDataset};
use simpadv_runtime::{set_global_threads, split_seed, Runtime};

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Trains the Proposed defense and runs the Table I battery with the
/// process-global runtime pinned to `threads`.
fn train_and_eval(threads: usize) -> (Vec<f32>, Vec<f32>) {
    set_global_threads(threads);
    let train = SynthDataset::Mnist.generate(&SynthConfig::new(120, 1));
    let test = SynthDataset::Mnist.generate(&SynthConfig::new(80, 2));
    let mut clf = ModelSpec::small_mlp().build(0);
    let report =
        ProposedTrainer::paper_defaults(0.3).train(&mut clf, &train, &TrainConfig::new(4, 7));
    let result = EvalSuite::paper(0.3).run(&mut clf, &test);
    (report.epoch_losses, result.accuracies)
}

// Everything observing the global thread count lives in this one test:
// the test binary would otherwise race its own `set_global_threads`
// calls across test threads.
#[test]
fn thread_count_never_changes_results() {
    // Training loss curves and evaluation accuracies, threads = 1 vs 4.
    let (loss_serial, acc_serial) = train_and_eval(1);
    let (loss_parallel, acc_parallel) = train_and_eval(4);
    assert_eq!(loss_serial.len(), 4);
    assert_eq!(acc_serial.len(), 4); // original, fgsm, bim(10), bim(30)
    assert_eq!(bits(&loss_serial), bits(&loss_parallel), "loss curves diverged");
    assert_eq!(bits(&acc_serial), bits(&acc_parallel), "eval accuracies diverged");

    // Crafted adversarial batches with explicit runtimes, deterministic
    // and seeded-stochastic attacks alike.
    let data = SynthDataset::Fashion.generate(&SynthConfig::new(50, 3));
    let model = ModelSpec::small_mlp().build(1);
    let x = data.images().clone();
    let y = data.labels().to_vec();
    let craft = |threads: usize| {
        let rt = Runtime::new(threads);
        let bim = craft_parallel(&rt, &model, &|_| Box::new(Bim::new(0.2, 5)), &x, &y);
        let pgd = craft_parallel(
            &rt,
            &model,
            &|first| Box::new(Pgd::new(0.2, 3, split_seed(2019, first as u64))),
            &x,
            &y,
        );
        (bim, pgd)
    };
    let (bim_serial, pgd_serial) = craft(1);
    let (bim_parallel, pgd_parallel) = craft(4);
    assert_eq!(bim_serial, bim_parallel, "BIM batches diverged");
    assert_eq!(pgd_serial, pgd_parallel, "seeded PGD batches diverged");

    set_global_threads(1);
}
