//! Cross-crate telemetry determinism.
//!
//! The observability contract (DESIGN.md, "Observability") says a trace's
//! *logical* fields — the span tree, event order, counters, gauges and
//! histograms — are bitwise identical for any `--threads` value; only the
//! `meta` side-channel (wall-clock micros, pool statistics) may differ.
//! This test drives the full stack (proposed training, the Table I
//! evaluation battery, the masking audit) under an in-memory sink at 1
//! and 4 threads and compares the streams event by event.
//!
//! One test function on purpose: the tracer is process-global, so a
//! second concurrently-running test in this binary would interleave its
//! events into the stream under comparison.

use simpadv::train::{ProposedTrainer, Trainer};
use simpadv::{audit_masking, EvalSuite, ModelSpec, TrainConfig, TrainReport};
use simpadv_data::{SynthConfig, SynthDataset};
use simpadv_trace::{Event, EventKind, Summary};

/// One fully traced run: train the proposed defense (with a persistent-
/// example reset at epoch 2), evaluate it, audit it. Returns the emitted
/// events and the training report.
fn traced_run(threads: usize) -> (Vec<Event>, TrainReport) {
    simpadv_runtime::set_global_threads(threads);
    let handle = simpadv_trace::install_memory();

    let train = SynthDataset::Mnist.generate(&SynthConfig::new(64, 1));
    let test = SynthDataset::Mnist.generate(&SynthConfig::new(40, 2));
    let mut clf = ModelSpec::small_mlp().build(0);
    // reset_period 2 over 3 epochs: the epoch-2 reset (and its `reset`
    // counter plus post-reset drift gauges) is part of the trace
    let report = ProposedTrainer::new(0.3, 0.03, 2).train(
        &mut clf,
        &train,
        &TrainConfig::new(3, 0).with_batch_size(32),
    );
    let _ = EvalSuite::paper(0.3).run(&mut clf, &test);
    let _ = audit_masking(&mut clf, &test, 0.3, 7);

    simpadv_trace::uninstall(); // flushes pending histograms into the sink
    (handle.take(), report)
}

#[test]
fn telemetry_is_logically_identical_across_thread_counts() {
    let (serial, report_serial) = traced_run(1);
    let (parallel, report_parallel) = traced_run(4);
    simpadv_runtime::set_global_threads(1);

    // -- logical determinism: identical streams once meta is stripped --
    assert_eq!(serial.len(), parallel.len(), "event counts diverged");
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.without_meta(), b.without_meta(), "logical fields diverged at seq {}", a.seq);
    }

    // -- the stream contains every subsystem that was exercised --
    let paths: Vec<&str> = serial.iter().map(|e| e.path.as_str()).collect();
    for expected in [
        "train",
        "train/epoch",
        "train/epoch/loss",
        "train/epoch/drift_mean_linf",
        "train/epoch/drift_max_linf",
        "train/epoch/boundary_frac",
        "train/epoch/reset",
        "train/epoch/signed_step",
        "eval",
        "eval/accuracy",
        "audit",
        "audit/check",
    ] {
        assert!(paths.contains(&expected), "missing path {expected} in {paths:#?}");
    }
    // four audit checks, one counter each
    let audit_checks =
        serial.iter().filter(|e| e.kind == EventKind::Counter && e.path == "audit/check").count();
    assert_eq!(audit_checks, 4);

    // -- TrainReport regression: span-clock work is thread invariant --
    assert_eq!(report_serial.epoch_work, report_parallel.epoch_work);
    assert_eq!(report_serial.epoch_losses, report_parallel.epoch_losses);
    assert!(report_serial.mean_epoch_work() > 0.0);
    assert!(report_serial.mean_epoch_seconds() > 0.0);

    // -- JSONL round-trip and summarization --
    let jsonl: String = serial.iter().map(|e| e.to_json_line() + "\n").collect();
    let summary = Summary::from_jsonl(&jsonl).expect("emitted events must satisfy the schema");
    assert_eq!(summary.events, serial.len() as u64);
    assert!(summary.spans.contains_key("train"), "spans: {:?}", summary.spans.keys());
    let epoch = &summary.spans["train/epoch"];
    assert_eq!(epoch.count, 3);
    assert!(epoch.forward > 0 && epoch.backward > 0);
    let rendered = summary.render();
    assert!(rendered.contains("train/epoch"));
    assert!(rendered.contains("events"));
}
