//! Crash-safety acceptance: training `k` epochs, "crashing", and resuming
//! from the checkpoint directory must be bitwise identical to an
//! uninterrupted run — weights, persistent adversarial examples, rng
//! state, eval accuracies and the meta-stripped `train/epoch*` trace
//! stream — at 1 and 4 worker threads. A second stage walks the
//! fault-injection matrix: a failure forced at every registered failpoint
//! must leave the checkpoint directory recoverable.

use simpadv::train::{CheckpointSession, ProposedTrainer, TrainState, Trainer};
use simpadv::{EvalSuite, ModelSpec, TrainConfig};
use simpadv_data::{SynthConfig, SynthDataset};
use simpadv_nn::StateDict;
use simpadv_resilience::{failpoint, CheckpointStore, PersistError};
use simpadv_runtime::set_global_threads;
use simpadv_trace::{Event, EventKind, MemorySink};

const EPOCHS: usize = 6;
const CRASH_AFTER: usize = 3;

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("simpadv-resume-determinism").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The `train/epoch*` event stream with nondeterministic parts removed:
/// sequence numbers zeroed (the partial + resumed streams are
/// concatenated, so absolute positions differ), wall-clock/pool `meta`
/// stripped, histograms dropped (they flush at uninstall time, outside
/// the epoch stream).
fn epoch_stream(events: Vec<Event>) -> Vec<Event> {
    events
        .into_iter()
        .filter(|e| e.path.starts_with("train/epoch") && e.kind != EventKind::Histogram)
        .map(|mut e| {
            e.seq = 0;
            e.meta.clear();
            e
        })
        .collect()
}

/// Loads the newest valid snapshot from a checkpoint directory.
fn latest_snapshot(dir: &std::path::Path) -> TrainState {
    let store = CheckpointStore::open(dir).unwrap();
    let (_, bytes) = store.load_latest_valid().unwrap().expect("a valid generation");
    serde_json::from_str(&String::from_utf8(bytes).unwrap()).unwrap()
}

struct RunOutcome {
    weights: StateDict,
    losses: Vec<f32>,
    work: Vec<u64>,
    accuracies: Vec<f32>,
    snapshot: TrainState,
    events: Vec<Event>,
}

/// Trains the Proposed defense under a checkpoint session, capturing the
/// trace stream, then runs the Table I eval battery (outside the capture,
/// so only training events are compared).
fn run_training(dir: &std::path::Path, epochs: usize, resume: bool) -> RunOutcome {
    let train = SynthDataset::Mnist.generate(&SynthConfig::new(120, 1));
    let test = SynthDataset::Mnist.generate(&SynthConfig::new(80, 2));
    let mut clf = ModelSpec::small_mlp().build(0);
    let mut session = CheckpointSession::new(dir, 1).unwrap().with_resume(resume);
    let (sink, handle) = MemorySink::new();
    simpadv_trace::install_sink(Box::new(sink));
    let report = ProposedTrainer::paper_defaults(0.3)
        .train_resumable(&mut clf, &train, &TrainConfig::new(epochs, 7), &mut session)
        .unwrap();
    simpadv_trace::uninstall();
    let accuracies = EvalSuite::paper(0.3).run(&mut clf, &test).accuracies;
    RunOutcome {
        weights: StateDict::capture(clf.network()),
        losses: report.epoch_losses,
        work: report.epoch_work,
        accuracies,
        snapshot: latest_snapshot(dir),
        events: handle.take(),
    }
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Crash/resume equivalence at one thread count.
fn assert_resume_bitwise_identical(threads: usize) {
    set_global_threads(threads);
    let tag = format!("t{threads}");

    // Uninterrupted EPOCHS-epoch run.
    let straight_dir = fresh_dir(&format!("straight-{tag}"));
    let straight = run_training(&straight_dir, EPOCHS, false);

    // CRASH_AFTER epochs, process "dies", resume to EPOCHS.
    let crash_dir = fresh_dir(&format!("crash-{tag}"));
    let partial = run_training(&crash_dir, CRASH_AFTER, false);
    let resumed = run_training(&crash_dir, EPOCHS, true);

    assert_eq!(
        straight.weights, resumed.weights,
        "[{tag}] resumed weights must match the straight run bitwise"
    );
    assert_eq!(bits(&straight.losses), bits(&resumed.losses), "[{tag}] loss curves diverged");
    assert_eq!(straight.work, resumed.work, "[{tag}] logical epoch work diverged");
    assert_eq!(
        bits(&straight.accuracies),
        bits(&resumed.accuracies),
        "[{tag}] eval accuracies diverged"
    );
    // The final snapshots carry the full state: persistent adversarial
    // examples (aux), rng words, epoch cursor.
    assert_eq!(straight.snapshot.aux, resumed.snapshot.aux, "[{tag}] aux batches diverged");
    assert_eq!(straight.snapshot.rng, resumed.snapshot.rng, "[{tag}] rng state diverged");
    assert_eq!(straight.snapshot.next_epoch, EPOCHS);
    assert_eq!(resumed.snapshot.next_epoch, EPOCHS);
    assert_eq!(straight.snapshot.model, resumed.snapshot.model);

    // Meta-stripped trace streams: epochs 0..CRASH_AFTER from the partial
    // run followed by CRASH_AFTER..EPOCHS from the resumed run must
    // replay the straight run's epoch stream event for event.
    let mut stitched = epoch_stream(partial.events);
    stitched.extend(epoch_stream(resumed.events));
    let straight_stream = epoch_stream(straight.events);
    assert!(!straight_stream.is_empty(), "[{tag}] expected epoch events");
    assert_eq!(straight_stream, stitched, "[{tag}] trace streams diverged");
}

/// One forced failure per registered failpoint; the store must stay
/// recoverable after each.
fn assert_failpoint_matrix_recoverable() {
    let good = b"generation-one".to_vec();
    let next = b"generation-two".to_vec();
    for &site in failpoint::registered_sites() {
        failpoint::disarm_all();
        let dir = fresh_dir(&format!("failpoint-{site}"));
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(&good).unwrap();

        // Injection mode per site: control-flow sites error out, data
        // sites (mid-write/corrupt) damage the bytes silently.
        let (spec, silent) = match site {
            "mid-write" => ("short:4", true),
            "corrupt" => ("flip:0", true),
            _ => ("error", false),
        };
        failpoint::arm(site, spec).unwrap();
        let result = store.save(&next);
        failpoint::disarm_all();
        if silent {
            result.unwrap_or_else(|e| panic!("silent damage at {site} must not error: {e}"));
        } else {
            let err = result.expect_err("armed control-flow site must fail the save");
            assert!(
                matches!(err, PersistError::Injected { .. } | PersistError::Io { .. }),
                "unexpected error at {site}: {err}"
            );
        }

        let (_, recovered) = store
            .load_latest_valid()
            .unwrap()
            .unwrap_or_else(|| panic!("no valid generation left after {site}"));
        match site {
            // The rename happened before the injected failure: the new
            // generation is durable and intact.
            "post-rename" => assert_eq!(recovered, next, "site {site}"),
            // Everything earlier either never produced the new file or
            // left it detectably damaged: fall back to the old one.
            _ => assert_eq!(recovered, good, "site {site}"),
        }
    }
    failpoint::disarm_all();
}

/// A damaged newest generation must not stop a resume: the session skips
/// it and fast-forwards from the newest *valid* snapshot.
fn assert_damaged_generation_falls_back(reference: &[f32]) {
    let dir = fresh_dir("damaged-fallback");
    let first = run_training(&dir, EPOCHS, false);
    assert_eq!(bits(&first.losses), bits(reference));
    // Plant a newer, corrupted generation above every real one.
    let store = CheckpointStore::open(&dir).unwrap();
    let top = *store.generations().unwrap().last().unwrap();
    let mut bytes = store.load(top).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(dir.join(format!("ckpt-{:08}.ckpt", top + 1)), &bytes).unwrap();
    // Resuming must skip the damaged generation, land on the completed
    // snapshot, and fast-forward without training a single extra epoch.
    let resumed = run_training(&dir, EPOCHS, true);
    assert_eq!(bits(&resumed.losses), bits(reference), "fallback resume diverged");
    assert_eq!(resumed.weights, first.weights);
}

// Everything observing process-global state (worker threads, the trace
// sink, the failpoint registry) lives in this one test so parallel test
// threads cannot race it.
#[test]
fn crash_resume_is_bitwise_identical_and_failures_recoverable() {
    assert_resume_bitwise_identical(1);
    assert_resume_bitwise_identical(4);
    set_global_threads(1);

    assert_failpoint_matrix_recoverable();

    let straight_dir = fresh_dir("straight-reference");
    let reference = run_training(&straight_dir, EPOCHS, false).losses;
    assert_damaged_generation_falls_back(&reference);
}
