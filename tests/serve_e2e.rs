//! End-to-end acceptance for the serving subsystem: an in-process server
//! takes concurrent clean + PGD traffic while a new checkpoint
//! generation lands in the watched directory mid-run.
//!
//! Asserts the four contract points:
//! 1. every response is bitwise identical to offline single-input
//!    inference on the generation that answered it;
//! 2. the hot swap happens without a single rejected in-flight request;
//! 3. the per-generation clean/adversarial accuracy counters in the
//!    trace match an offline evaluation of the same inputs;
//! 4. the benchmark artifact records latency percentiles with all
//!    wall-clock numbers quarantined in `meta`.
//!
//! This binary owns the process-global tracer (memory sink).

use simpadv::ModelSpec;
use simpadv_attacks::{Attack, Pgd};
use simpadv_data::{SynthConfig, SynthDataset, CLASS_COUNT};
use simpadv_nn::{Classifier, GradientModel};
use simpadv_obs::{ServeArtifact, ServeGenerationRow, ServeMeta, ServeScale};
use simpadv_resilience::CheckpointStore;
use simpadv_runtime::Runtime;
use simpadv_serve::{
    client, BatchConfig, PredictRequest, PredictResponse, ServeConfig, ServedModel, Server,
};
use simpadv_trace::clock::WallTimer;
use simpadv_trace::FieldValue;
use std::collections::BTreeMap;

const SAMPLES: usize = 12;
const ROUNDS: usize = 2;

fn publish(store: &CheckpointStore, clf: &Classifier, spec: &ModelSpec) -> u64 {
    ServedModel::capture(spec, clf, "mnist", "test").publish(store).unwrap()
}

fn logits_matrix(clf: &mut Classifier, x: &simpadv_tensor::Tensor) -> Vec<f32> {
    clf.logits(x).into_vec()
}

fn row_bits(matrix: &[f32], row: usize) -> Vec<u32> {
    matrix[row * CLASS_COUNT..(row + 1) * CLASS_COUNT].iter().map(|v| v.to_bits()).collect()
}

#[test]
fn hot_swap_under_concurrent_adversarial_traffic() {
    let handle = simpadv_trace::install_memory();
    let dir = std::env::temp_dir().join("simpadv-serve-e2e");
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::open(&dir).unwrap();

    let spec = ModelSpec::small_mlp();
    let mut model_g1 = spec.build(1);
    let mut model_g2 = spec.build(2);
    let g1 = publish(&store, &model_g1, &spec);

    // Fixed request pools: clean inputs and their PGD-perturbed twins
    // (crafted against generation 1 — the inputs stay fixed even after
    // the swap; only the answering generation changes).
    let data = SynthDataset::Mnist.generate(&SynthConfig::new(SAMPLES, 21));
    let labels = data.labels().to_vec();
    let eps = SynthDataset::Mnist.paper_epsilon();
    let adv = {
        let mut crafting = spec.build(1);
        Pgd::new(eps, 4, 77).perturb(&mut crafting, data.images(), &labels)
    };

    // Offline single-input references for both generations and pools.
    let clean_g1 = logits_matrix(&mut model_g1, data.images());
    let adv_g1 = logits_matrix(&mut model_g1, &adv);
    let clean_g2 = logits_matrix(&mut model_g2, data.images());
    let adv_g2 = logits_matrix(&mut model_g2, &adv);

    let mut cfg = ServeConfig::for_dir(&dir);
    cfg.batch = BatchConfig { batch_max: 4, batch_timeout_us: 300, queue_cap: 64 };
    cfg.watch_interval_us = 2_000; // the server watches the directory itself
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr();
    client::wait_ready(&addr, 5_000_000).unwrap();

    // Concurrently: (a) a closed-loop client mixing clean and
    // adversarial traffic, (b) a publisher dropping generation 2 into
    // the watched directory and waiting for the watcher to install it.
    let publisher_store = CheckpointStore::open(&dir).unwrap();
    let send = |sample: usize, adversarial: bool| -> PredictResponse {
        let pixels = if adversarial {
            adv.row(sample).into_vec()
        } else {
            data.images().row(sample).into_vec()
        };
        let request = PredictRequest { pixels, label: Some(labels[sample]), adversarial };
        match client::predict(&addr, &request).unwrap() {
            client::PredictOutcome::Predicted(resp) => resp,
            client::PredictOutcome::Rejected(_) => {
                panic!("no in-flight request may be rejected during the swap")
            }
        }
    };
    let rt = Runtime::new(2);
    let (responses, g2) = rt.par_join(
        || {
            let mut responses: Vec<(usize, bool, PredictResponse)> = Vec::new();
            for round in 0..ROUNDS {
                for sample in 0..SAMPLES {
                    for adversarial in [false, true] {
                        let _ = round;
                        responses.push((sample, adversarial, send(sample, adversarial)));
                    }
                }
            }
            responses
        },
        || {
            let g2 = publish(&publisher_store, &model_g2, &spec);
            // wait for the watcher to install it
            let timer = WallTimer::start();
            loop {
                if client::healthz(&addr).unwrap().generation == g2 {
                    return g2;
                }
                assert!(timer.elapsed_us() < 10_000_000, "watcher never installed gen {g2}");
            }
        },
    );
    assert!(g2 > g1);

    // Post-swap traffic is guaranteed to land on generation 2.
    let mut all = responses;
    for adversarial in [false, true] {
        let resp = send(0, adversarial);
        assert_eq!(resp.generation, g2, "post-swap traffic must serve the new generation");
        all.push((0, adversarial, resp));
    }

    // (1) Every response matches offline inference on its generation,
    // bit for bit.
    for (sample, adversarial, resp) in &all {
        let reference = match (resp.generation == g1, *adversarial) {
            (true, false) => &clean_g1,
            (true, true) => &adv_g1,
            (false, false) => &clean_g2,
            (false, true) => &adv_g2,
        };
        assert!(resp.generation == g1 || resp.generation == g2, "unknown generation");
        let got: Vec<u32> = resp.logits.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            got,
            row_bits(reference, *sample),
            "response for sample {sample} (adversarial={adversarial}) deviated from \
             offline inference on generation {}",
            resp.generation
        );
    }

    // (2) The swap shed nothing: every submitted request was answered.
    let snapshot = server.shutdown();
    let expected_total = (ROUNDS * SAMPLES * 2 + 2) as u64;
    assert_eq!(snapshot.served, expected_total);
    assert_eq!(snapshot.rejected, 0, "hot swap must not reject in-flight requests");
    assert_eq!(snapshot.swapped_generations, 1);
    assert_eq!(snapshot.skipped_generations, 0);

    // (3) Trace counters per (generation, traffic) match an offline
    // evaluation of the same inputs.
    let mut expected: BTreeMap<(u64, bool), (u64, u64)> = BTreeMap::new(); // (served, correct)
    for (sample, adversarial, resp) in &all {
        let reference = match (resp.generation == g1, *adversarial) {
            (true, false) => &clean_g1,
            (true, true) => &adv_g1,
            (false, false) => &clean_g2,
            (false, true) => &adv_g2,
        };
        let row = &reference[sample * CLASS_COUNT..(sample + 1) * CLASS_COUNT];
        let offline_pred =
            (0..CLASS_COUNT).max_by(|a, b| row[*a].partial_cmp(&row[*b]).unwrap()).unwrap();
        assert_eq!(resp.prediction, offline_pred, "prediction must match offline argmax");
        let cell = expected.entry((resp.generation, *adversarial)).or_insert((0, 0));
        cell.0 += 1;
        if offline_pred == labels[*sample] {
            cell.1 += 1;
        }
    }
    let mut traced: BTreeMap<(u64, bool), (u64, u64)> = BTreeMap::new();
    for event in handle.take() {
        if event.path != "serve/served" && event.path != "serve/correct" {
            continue;
        }
        let field =
            |name: &str| event.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone());
        let Some(FieldValue::U64(generation)) = field("generation") else { continue };
        let Some(FieldValue::Bool(adversarial)) = field("adversarial") else { continue };
        let Some(FieldValue::U64(value)) = field("value") else { continue };
        let cell = traced.entry((generation, adversarial)).or_insert((0, 0));
        if event.path == "serve/served" {
            cell.0 += value;
        } else {
            cell.1 += value;
        }
    }
    assert_eq!(traced, expected, "trace counters must match the offline evaluation");
    // ... and the /stats registry agrees with the trace.
    for row in &snapshot.generations {
        let key = (row.generation, row.traffic == "adversarial");
        assert_eq!(
            (row.requests, row.correct),
            *expected.get(&key).unwrap_or(&(0, 0)),
            "stats row {row:?} disagrees with the offline evaluation"
        );
    }

    // (4) The artifact records latency percentiles, wall quarantined in
    // meta; the logical section reproduces under self-comparison.
    let artifact = ServeArtifact {
        schema_version: simpadv_obs::SERVE_SCHEMA_VERSION,
        experiment: simpadv_obs::SERVE_EXPERIMENT.to_string(),
        scale: ServeScale {
            requests: expected_total,
            clients: 1,
            samples: SAMPLES as u64,
            adv_permille: 500,
            attack: "pgd".to_string(),
            batch_max: 4,
            queue_cap: 64,
            seed: 21,
        },
        served: snapshot.served,
        skipped_generations: snapshot.skipped_generations,
        generations: snapshot
            .generations
            .iter()
            .map(|g| ServeGenerationRow {
                generation: g.generation,
                traffic: g.traffic.clone(),
                requests: g.requests,
                labeled: g.labeled,
                correct: g.correct,
            })
            .collect(),
        meta: ServeMeta {
            threads: 2,
            wall_total_s: 0.0,
            throughput_rps: 0.0,
            latency_p50_us: snapshot.latency_us.p50_us,
            latency_p90_us: snapshot.latency_us.p90_us,
            latency_p99_us: snapshot.latency_us.p99_us,
            latency_max_us: snapshot.latency_us.max_us,
            batch_occupancy_mean: snapshot.batch_occupancy.mean,
            batch_occupancy_max: snapshot.batch_occupancy.max,
            rejected: snapshot.rejected,
            note: ServeArtifact::wall_note(),
        },
    };
    assert_eq!(snapshot.latency_us.count, expected_total, "every request must be timed");
    assert!(
        artifact.meta.latency_p50_us <= artifact.meta.latency_p90_us
            && artifact.meta.latency_p90_us <= artifact.meta.latency_p99_us
            && artifact.meta.latency_p99_us <= artifact.meta.latency_max_us,
        "percentiles must be ordered: {:?}",
        artifact.meta
    );
    let path = dir.join("BENCH_serve.json");
    simpadv_resilience::write_json_atomic(&path, &artifact).unwrap();
    let back: ServeArtifact =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(back, artifact, "artifact must round-trip exactly");
    let report = simpadv_obs::compare_serve(&artifact, &back);
    assert!(report.passed(), "self-comparison must pass: {:?}", report.regressions);
}
