//! Dataset-quality invariants the experiments silently depend on.

use simpadv_suite::data::{SynthConfig, SynthDataset, CLASS_COUNT, IMAGE_PIXELS};

#[test]
fn images_are_high_contrast() {
    // robust separability at the paper's eps needs near-binary pixels:
    // most ink mass must sit above 0.7, most background below 0.3
    for dataset in [SynthDataset::Mnist, SynthDataset::Fashion] {
        let d = dataset.generate(&SynthConfig::new(100, 1));
        let s = d.images().as_slice();
        let total = s.len() as f32;
        let mid_band = s.iter().filter(|&&v| (0.3..0.7).contains(&v)).count() as f32;
        assert!(
            mid_band / total < 0.15,
            "{}: {:.1}% of pixels in the ambiguous 0.3-0.7 band",
            dataset.id(),
            100.0 * mid_band / total
        );
    }
}

#[test]
fn ink_fraction_is_reasonable() {
    for dataset in [SynthDataset::Mnist, SynthDataset::Fashion] {
        let d = dataset.generate(&SynthConfig::new(100, 2));
        let mean = d.images().mean();
        assert!(
            (0.03..0.45).contains(&mean),
            "{}: mean intensity {mean} outside sane range",
            dataset.id()
        );
    }
}

#[test]
fn every_class_has_within_class_variation() {
    let d = SynthDataset::Mnist.generate(&SynthConfig::new(10 * CLASS_COUNT, 3));
    for class in 0..CLASS_COUNT {
        // rows class and class + CLASS_COUNT share a label but differ
        let a = d.images().row(class);
        let b = d.images().row(class + CLASS_COUNT);
        assert_eq!(d.labels()[class], d.labels()[class + CLASS_COUNT]);
        let l1: f32 = a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| (x - y).abs()).sum();
        assert!(l1 > 1.0, "class {class} renders are nearly identical (l1 {l1})");
    }
}

#[test]
fn same_class_images_are_closer_than_cross_class_on_average() {
    let d = SynthDataset::Mnist.generate(&SynthConfig::new(200, 4));
    let l2 = |a: usize, b: usize| -> f32 {
        d.images()
            .row(a)
            .as_slice()
            .iter()
            .zip(d.images().row(b).as_slice())
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt()
    };
    let mut same = 0.0;
    let mut cross = 0.0;
    let mut same_n = 0;
    let mut cross_n = 0;
    for i in 0..60 {
        for j in (i + 1)..60 {
            if d.labels()[i] == d.labels()[j] {
                same += l2(i, j);
                same_n += 1;
            } else {
                cross += l2(i, j);
                cross_n += 1;
            }
        }
    }
    let same_mean = same / same_n as f32;
    let cross_mean = cross / cross_n as f32;
    assert!(
        same_mean < cross_mean,
        "within-class distance {same_mean} not below cross-class {cross_mean}"
    );
}

#[test]
fn image_dimensions_match_constants() {
    let d = SynthDataset::Fashion.generate(&SynthConfig::new(10, 5));
    assert_eq!(d.images().shape(), &[10, IMAGE_PIXELS]);
    assert_eq!(d.images_nchw().shape(), &[10, 1, 28, 28]);
    assert_eq!(d.num_classes(), CLASS_COUNT);
}
