//! Cross-crate sanity: small MLPs must learn the synthetic tasks, and the
//! fashion task must be harder than the digits task — the premise behind
//! every experiment in the paper reproduction.

use rand::rngs::StdRng;
use rand::SeedableRng;
use simpadv_data::{SynthConfig, SynthDataset};
use simpadv_nn::{accuracy, Classifier, Dense, GradientModel, Relu, Sequential, Sgd};

fn train_mlp(dataset: SynthDataset, train_n: usize, epochs: usize, seed: u64) -> (f32, f32) {
    let train = dataset.generate(&SynthConfig::new(train_n, seed));
    let test = dataset.generate(&SynthConfig::new(500, seed + 1));
    let mut rng = StdRng::seed_from_u64(seed + 2);
    let net = Sequential::new(vec![
        Box::new(Dense::new(784, 128, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(128, 10, &mut rng)),
    ]);
    let mut clf = Classifier::new(net, 10);
    let mut opt = Sgd::new(0.1).with_momentum(0.9);
    for _ in 0..epochs {
        for (_, x, y) in train.batches(64, &mut rng) {
            clf.train_batch(&x, &y, &mut opt);
        }
    }
    let train_acc = accuracy(&clf.logits(train.images()), train.labels());
    let test_acc = accuracy(&clf.logits(test.images()), test.labels());
    (train_acc, test_acc)
}

#[test]
fn mlp_learns_synthetic_mnist() {
    let (train_acc, test_acc) = train_mlp(SynthDataset::Mnist, 1000, 10, 42);
    assert!(train_acc > 0.97, "train accuracy {train_acc}");
    assert!(test_acc > 0.90, "test accuracy {test_acc}");
}

#[test]
fn mlp_learns_synthetic_fashion_less_well() {
    let (_, mnist_acc) = train_mlp(SynthDataset::Mnist, 1000, 10, 7);
    let (_, fashion_acc) = train_mlp(SynthDataset::Fashion, 1000, 10, 7);
    assert!(fashion_acc > 0.70, "fashion accuracy {fashion_acc} too low to be learnable");
    assert!(
        fashion_acc < mnist_acc,
        "fashion ({fashion_acc}) should be harder than mnist ({mnist_acc})"
    );
}
