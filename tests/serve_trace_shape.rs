//! The server's logical trace stream must be shape-identical at any
//! thread count: same event kinds, paths and fields in the same order,
//! with only the quarantined wall-clock `meta` allowed to differ.
//!
//! This binary owns the process-global tracer (memory sink); no other
//! test may run in it.

use simpadv::ModelSpec;
use simpadv_data::{SynthConfig, SynthDataset};
use simpadv_runtime::set_global_threads;
use simpadv_serve::{BatchConfig, Engine, PredictRequest, ServedModel};
use simpadv_trace::{Event, EventKind, FieldValue};

/// An event's logical shape: kind, path, and fields — no seq (runs share
/// one process counter), no meta (wall clock is machine-dependent).
fn shape(e: &Event) -> (EventKind, String, Vec<(String, FieldValue)>) {
    (e.kind, e.path.clone(), e.fields.clone())
}

#[test]
fn logical_trace_stream_is_thread_invariant() {
    let handle = simpadv_trace::install_memory();
    let data = SynthDataset::Fashion.generate(&SynthConfig::new(8, 11));
    let requests: Vec<PredictRequest> = (0..data.len())
        .map(|i| PredictRequest {
            pixels: data.images().row(i).into_vec(),
            label: Some(data.labels()[i]),
            adversarial: i % 3 == 0,
        })
        .collect();

    let run = |threads: usize| {
        set_global_threads(threads);
        let dir = std::env::temp_dir().join(format!("simpadv-serve-trace-shape-{threads}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store = simpadv_resilience::CheckpointStore::open(&dir).unwrap();
        let spec = ModelSpec::small_mlp();
        ServedModel::capture(&spec, &spec.build(3), "fashion", "test").publish(&store).unwrap();
        let engine =
            Engine::new(store, BatchConfig { batch_max: 3, batch_timeout_us: 100, queue_cap: 16 })
                .unwrap();
        handle.take(); // drop startup events (store paths differ per run)
        engine.infer_batch(&requests).unwrap();
        let shapes: Vec<_> = handle.take().iter().map(shape).collect();
        shapes
    };

    let serial = run(1);
    let parallel = run(4);
    assert!(!serial.is_empty(), "the serving path must emit trace events");
    assert!(
        serial.iter().any(|(_, path, _)| path == "serve/batch"),
        "batch spans expected in {serial:?}"
    );
    assert!(
        serial.iter().any(|(_, path, _)| path == "serve/served"),
        "served counters expected in {serial:?}"
    );
    assert_eq!(serial, parallel, "logical trace stream diverged across thread counts");

    set_global_threads(1);
}
