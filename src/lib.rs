//! # simpadv-suite
//!
//! Umbrella crate for the `simpadv` reproduction of *"Using Intuition from
//! Empirical Properties to Simplify Adversarial Training Defense"* (Liu,
//! Khalil, Khreishah — 2019). It re-exports every sub-crate under one name
//! so that examples and integration tests can use a single dependency:
//!
//! * [`tensor`] — dense `f32` tensors ([`simpadv_tensor`])
//! * [`nn`] — layers, losses, optimizers ([`simpadv_nn`])
//! * [`data`] — synthetic MNIST / Fashion-MNIST ([`simpadv_data`])
//! * [`attacks`] — FGSM / BIM / PGD / MIM ([`simpadv_attacks`])
//! * [`defense`] — the paper's trainers and experiment harness ([`simpadv`])
//! * [`trace`] — structured tracing, metrics and profiling hooks
//!   ([`simpadv_trace`])
//!
//! See the repository `README.md` for a walkthrough and `DESIGN.md` for the
//! system inventory.

pub use simpadv as defense;
pub use simpadv_attacks as attacks;
pub use simpadv_data as data;
pub use simpadv_nn as nn;
pub use simpadv_tensor as tensor;
pub use simpadv_trace as trace;
